//! Named, versioned model registry.
//!
//! Models are `chemcost_ml` gradient-boosting ensembles loaded through
//! `chemcost_ml::persist`. Each entry remembers the file it came from so
//! it can be hot-reloaded; every successful (re)load bumps the entry's
//! version. Lookups return an `Arc` clone, so a reload never invalidates
//! predictions already in flight.
//!
//! Every registered ensemble is compiled once, at (re)load time, into a
//! [`FlatGbt`] — the contiguous quantized representation whose batched
//! predictions agree with the recursive path within
//! `chemcost_ml::flat::QUANT_REL_TOL` (and whose exact `f64` entry
//! points stay bit-for-bit) — so the request handlers never pay per-row
//! tree recursion.

use crate::fault::{FaultKind, FaultPlane};
use chemcost_ml::flat::FlatGbt;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::persist::load_gb;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One registered model.
struct Entry {
    model: Arc<GradientBoosting>,
    /// The same ensemble compiled for fast batched inference.
    flat: Arc<FlatGbt>,
    version: u64,
    machine: String,
    path: Option<PathBuf>,
    /// Displaced (model, flat, version) kept by the last promotion so one
    /// rollback command can restore it.
    prior: Option<(Arc<GradientBoosting>, Arc<FlatGbt>, u64)>,
}

/// Summary of a registered model, as reported by `GET /v1/models`.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Registry name.
    pub name: String,
    /// Load generation; starts at 1, +1 per successful reload.
    pub version: u64,
    /// Machine the model was trained against.
    pub machine: String,
    /// Source file, when loaded from disk.
    pub path: Option<PathBuf>,
    /// Machines for which this model is the default.
    pub default_for: Vec<String>,
}

/// A resolved model lookup: the ensemble plus its registry metadata.
#[derive(Clone)]
pub struct ResolvedModel {
    /// Registry name the lookup resolved to.
    pub name: String,
    /// The shared trained model (recursive representation).
    pub model: Arc<GradientBoosting>,
    /// The same ensemble compiled into the flat fast-inference layout;
    /// predictions agree with `model`'s within
    /// `chemcost_ml::flat::QUANT_REL_TOL` (the quantized default path),
    /// bit-for-bit on the `*_exact` entry points.
    pub flat: Arc<FlatGbt>,
    /// Load generation.
    pub version: u64,
    /// Machine the model was trained against.
    pub machine: String,
}

impl std::fmt::Debug for ResolvedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedModel")
            .field("name", &self.name)
            .field("version", &self.version)
            .field("machine", &self.machine)
            .finish_non_exhaustive()
    }
}

/// Thread-safe registry of named models with per-machine defaults.
#[derive(Default)]
pub struct ModelRegistry {
    entries: RwLock<HashMap<String, Entry>>,
    /// machine name → model name
    defaults: RwLock<HashMap<String, String>>,
    /// Chaos hook: when set, reloads roll for poison-reload injection.
    faults: RwLock<Option<Arc<FaultPlane>>>,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Install a fault plane: subsequent [`ModelRegistry::reload`] calls
    /// roll for [`FaultKind::PoisonReload`] and fail as if the file on
    /// disk were corrupt when the roll fires. The last-good model stays
    /// live either way.
    pub fn set_fault_plane(&self, plane: Arc<FaultPlane>) {
        *self.faults.write() = Some(plane);
    }

    /// Register an in-memory model (no reload path).
    pub fn insert(&self, name: &str, machine: &str, model: GradientBoosting) {
        let flat = Arc::new(FlatGbt::compile(&model));
        self.entries.write().insert(
            name.to_string(),
            Entry {
                model: Arc::new(model),
                flat,
                version: 1,
                machine: machine.to_string(),
                path: None,
                prior: None,
            },
        );
    }

    /// Register a model from a persisted `.ccgb` file.
    pub fn load_file(&self, name: &str, machine: &str, path: &Path) -> Result<(), String> {
        let gb = load_gb(path).map_err(|e| format!("loading {}: {e}", path.display()))?;
        let flat = Arc::new(FlatGbt::compile(&gb));
        self.entries.write().insert(
            name.to_string(),
            Entry {
                model: Arc::new(gb),
                flat,
                version: 1,
                machine: machine.to_string(),
                path: Some(path.to_path_buf()),
                prior: None,
            },
        );
        Ok(())
    }

    /// Re-read a file-backed model from disk. Returns the new version.
    /// The old model stays in place if the reload fails.
    pub fn reload(&self, name: &str) -> Result<u64, String> {
        let (path, expect_features) = {
            let entries = self.entries.read();
            let entry = entries.get(name).ok_or_else(|| format!("no model named {name:?}"))?;
            let path = entry
                .path
                .clone()
                .ok_or_else(|| format!("model {name:?} is in-memory only (no file to reload)"))?;
            (path, entry.model.n_features())
        };
        let poisoned = self.faults.read().as_ref().is_some_and(|p| p.roll(FaultKind::PoisonReload));
        if poisoned {
            return Err(format!(
                "reloading {}: injected corrupt model file (chaos poison-reload)",
                path.display()
            ));
        }
        // Read the file without holding the lock — disk I/O under a write
        // lock would stall every concurrent prediction.
        let gb = load_gb(&path).map_err(|e| format!("reloading {}: {e}", path.display()))?;
        // The wire format only bounds the feature count loosely, so a
        // corrupt-but-decodable file can change it; swapping such a model
        // in would panic every caller still predicting with the old
        // feature layout. Keep the last-good model instead.
        if expect_features > 0 && gb.n_features() != expect_features {
            return Err(format!(
                "reloading {}: feature count changed from {expect_features} to {} (refusing to swap)",
                path.display(),
                gb.n_features()
            ));
        }
        // Compile outside the write lock too — flattening a 750-tree
        // ensemble is pure CPU work no request should wait behind.
        let flat = Arc::new(FlatGbt::compile(&gb));
        let mut entries = self.entries.write();
        let entry = entries.get_mut(name).ok_or_else(|| format!("model {name:?} was removed"))?;
        entry.model = Arc::new(gb);
        entry.flat = flat;
        entry.version += 1;
        // A reload is explicit operator intervention: the pre-promotion
        // snapshot no longer describes the previous serving model.
        entry.prior = None;
        Ok(entry.version)
    }

    /// Atomically swap a retrained candidate in as the serving model,
    /// keeping the displaced (model, flat, version) triple for
    /// [`ModelRegistry::rollback`]. Returns the new version.
    ///
    /// Mirrors [`ModelRegistry::reload`]: the candidate is compiled outside
    /// the write lock, versions only ever move forward, and in-flight
    /// requests keep their `Arc` to the displaced model.
    pub fn promote(&self, name: &str, candidate: GradientBoosting) -> Result<u64, String> {
        if !self.entries.read().contains_key(name) {
            return Err(format!("no model named {name:?}"));
        }
        let flat = Arc::new(FlatGbt::compile(&candidate));
        let model = Arc::new(candidate);
        let mut entries = self.entries.write();
        let entry = entries.get_mut(name).ok_or_else(|| format!("model {name:?} was removed"))?;
        let displaced = (
            std::mem::replace(&mut entry.model, model),
            std::mem::replace(&mut entry.flat, flat),
            entry.version,
        );
        entry.prior = Some(displaced);
        entry.version += 1;
        Ok(entry.version)
    }

    /// Restore the model displaced by the last [`ModelRegistry::promote`].
    ///
    /// The prior model comes back **byte-identical** (the same `Arc`s the
    /// promotion displaced) but under a *new*, higher version number — never
    /// the old one — so caches and quality groups keyed by (name, version)
    /// can never confuse pre- and post-rollback answers. The snapshot is
    /// consumed: a second rollback without an intervening promotion errors.
    pub fn rollback(&self, name: &str) -> Result<u64, String> {
        let mut entries = self.entries.write();
        let entry = entries.get_mut(name).ok_or_else(|| format!("no model named {name:?}"))?;
        let (model, flat, _) = entry
            .prior
            .take()
            .ok_or_else(|| format!("model {name:?} has no prior version to roll back to"))?;
        entry.model = model;
        entry.flat = flat;
        entry.version += 1;
        Ok(entry.version)
    }

    /// Make `name` the default model for `machine`.
    pub fn set_default(&self, machine: &str, name: &str) -> Result<(), String> {
        if !self.entries.read().contains_key(name) {
            return Err(format!("no model named {name:?}"));
        }
        self.defaults.write().insert(machine.to_string(), name.to_string());
        Ok(())
    }

    /// Look up a model by explicit name, falling back to the machine's
    /// default, falling back to the sole registered model.
    pub fn resolve(
        &self,
        name: Option<&str>,
        machine: Option<&str>,
    ) -> Result<ResolvedModel, String> {
        let entries = self.entries.read();
        let resolved_name = match name {
            Some(n) => n.to_string(),
            None => {
                let defaults = self.defaults.read();
                match machine.and_then(|m| defaults.get(m)) {
                    Some(n) => n.clone(),
                    None if entries.len() == 1 => {
                        entries.keys().next().expect("len checked").clone()
                    }
                    None => {
                        return Err(if entries.is_empty() {
                            "no models registered".to_string()
                        } else {
                            "multiple models registered; specify \"model\"".to_string()
                        })
                    }
                }
            }
        };
        let entry = entries
            .get(&resolved_name)
            .ok_or_else(|| format!("no model named {resolved_name:?}"))?;
        Ok(ResolvedModel {
            name: resolved_name,
            model: Arc::clone(&entry.model),
            flat: Arc::clone(&entry.flat),
            version: entry.version,
            machine: entry.machine.clone(),
        })
    }

    /// All registered models, sorted by name.
    pub fn list(&self) -> Vec<ModelInfo> {
        let entries = self.entries.read();
        let defaults = self.defaults.read();
        let mut out: Vec<ModelInfo> = entries
            .iter()
            .map(|(name, e)| {
                let mut default_for: Vec<String> = defaults
                    .iter()
                    .filter(|(_, model)| *model == name)
                    .map(|(machine, _)| machine.clone())
                    .collect();
                default_for.sort();
                ModelInfo {
                    name: name.clone(),
                    version: e.version,
                    machine: e.machine.clone(),
                    path: e.path.clone(),
                    default_for,
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chemcost_linalg::Matrix;
    use chemcost_ml::Regressor;

    /// Tiny model fitted on a trivial 4-feature dataset.
    fn tiny_model(seed: u64) -> GradientBoosting {
        let mut gb = GradientBoosting::new(4, 2, 0.5);
        gb.seed = seed;
        let x = Matrix::from_fn(8, 4, |i, j| (i * 4 + j) as f64);
        let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
        gb.fit(&x, &y).unwrap();
        gb
    }

    #[test]
    fn resolve_by_explicit_name() {
        let reg = ModelRegistry::new();
        reg.insert("gb-a", "aurora", tiny_model(1));
        reg.insert("gb-f", "frontier", tiny_model(2));
        let r = reg.resolve(Some("gb-f"), None).unwrap();
        assert_eq!(r.name, "gb-f");
        assert_eq!(r.machine, "frontier");
        assert_eq!(r.version, 1);
    }

    #[test]
    fn resolve_falls_back_to_machine_default_then_sole_model() {
        let reg = ModelRegistry::new();
        reg.insert("only", "aurora", tiny_model(1));
        // Sole model resolves with no hints at all.
        assert_eq!(reg.resolve(None, None).unwrap().name, "only");

        reg.insert("other", "frontier", tiny_model(2));
        // Ambiguous now.
        assert!(reg.resolve(None, None).is_err());
        reg.set_default("frontier", "other").unwrap();
        assert_eq!(reg.resolve(None, Some("frontier")).unwrap().name, "other");
        // A machine without a default is still ambiguous.
        assert!(reg.resolve(None, Some("aurora")).is_err());
    }

    #[test]
    fn unknown_lookups_error() {
        let reg = ModelRegistry::new();
        assert!(reg.resolve(None, None).unwrap_err().contains("no models"));
        assert!(reg.resolve(Some("ghost"), None).is_err());
        assert!(reg.set_default("aurora", "ghost").is_err());
        assert!(reg.reload("ghost").is_err());
    }

    #[test]
    fn reload_bumps_version_and_swaps_model() {
        let dir = std::env::temp_dir().join(format!("chemcost-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ccgb");
        chemcost_ml::persist::save_gb(&path, &tiny_model(1)).unwrap();

        let reg = ModelRegistry::new();
        reg.load_file("m", "aurora", &path).unwrap();
        let before = reg.resolve(Some("m"), None).unwrap();
        assert_eq!(before.version, 1);

        chemcost_ml::persist::save_gb(&path, &tiny_model(99)).unwrap();
        assert_eq!(reg.reload("m").unwrap(), 2);
        let after = reg.resolve(Some("m"), None).unwrap();
        assert_eq!(after.version, 2);
        // The old Arc is still usable by in-flight requests.
        let probe = Matrix::from_fn(1, 4, |_, j| j as f64);
        let _ = before.model.predict(&probe);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_file_reload_keeps_last_good_model() {
        let dir = std::env::temp_dir().join(format!("chemcost-lastgood-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ccgb");
        chemcost_ml::persist::save_gb(&path, &tiny_model(1)).unwrap();

        let reg = ModelRegistry::new();
        reg.load_file("m", "aurora", &path).unwrap();

        // Overwrite with garbage: reload errors, last-good stays live at v1.
        std::fs::write(&path, b"definitely not a model").unwrap();
        assert!(reg.reload("m").is_err());
        let still = reg.resolve(Some("m"), None).unwrap();
        assert_eq!(still.version, 1);
        let probe = Matrix::from_fn(1, 4, |_, j| j as f64);
        assert!(still.model.predict(&probe)[0].is_finite());

        // Restore a valid file: the next reload succeeds and bumps to v2.
        chemcost_ml::persist::save_gb(&path, &tiny_model(2)).unwrap();
        assert_eq!(reg.reload("m").unwrap(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poison_reload_injects_failure_without_touching_the_model() {
        use crate::fault::{FaultKind, FaultPlane};

        let dir = std::env::temp_dir().join(format!("chemcost-poison-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ccgb");
        chemcost_ml::persist::save_gb(&path, &tiny_model(1)).unwrap();

        let reg = ModelRegistry::new();
        reg.load_file("m", "aurora", &path).unwrap();
        let plane =
            Arc::new(FaultPlane::builder().seed(1).rate(FaultKind::PoisonReload, 1.0).build());
        reg.set_fault_plane(Arc::clone(&plane));

        // The file on disk is perfectly valid, yet the injected fault
        // fails the reload — and the last-good model keeps serving.
        let err = reg.reload("m").unwrap_err();
        assert!(err.contains("poison-reload"), "{err}");
        assert_eq!(plane.injected(FaultKind::PoisonReload), 1);
        assert_eq!(reg.resolve(Some("m"), None).unwrap().version, 1);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_models_cannot_reload() {
        let reg = ModelRegistry::new();
        reg.insert("mem", "aurora", tiny_model(1));
        let err = reg.reload("mem").unwrap_err();
        assert!(err.contains("in-memory"), "{err}");
    }

    #[test]
    fn promote_swaps_and_rollback_restores_byte_identically() {
        use chemcost_ml::persist::encode_gb;

        let reg = ModelRegistry::new();
        let original = tiny_model(1);
        let original_bytes = encode_gb(&original);
        reg.insert("m", "aurora", original);
        let candidate = tiny_model(99);
        let candidate_bytes = encode_gb(&candidate);

        assert_eq!(reg.promote("m", candidate).unwrap(), 2);
        let promoted = reg.resolve(Some("m"), None).unwrap();
        assert_eq!(promoted.version, 2);
        assert_eq!(encode_gb(&promoted.model), candidate_bytes);

        // Rollback restores the displaced model byte-identically, under a
        // NEW version — never a reused one.
        assert_eq!(reg.rollback("m").unwrap(), 3);
        let restored = reg.resolve(Some("m"), None).unwrap();
        assert_eq!(restored.version, 3);
        assert_eq!(encode_gb(&restored.model), original_bytes);

        // The snapshot is consumed: no double rollback.
        let err = reg.rollback("m").unwrap_err();
        assert!(err.contains("no prior"), "{err}");
    }

    #[test]
    fn rollback_without_promotion_errors() {
        let reg = ModelRegistry::new();
        reg.insert("m", "aurora", tiny_model(1));
        assert!(reg.rollback("m").unwrap_err().contains("no prior"));
        assert!(reg.rollback("ghost").unwrap_err().contains("no model"));
        assert!(reg.promote("ghost", tiny_model(2)).is_err());
    }

    #[test]
    fn reload_clears_the_rollback_snapshot() {
        let dir = std::env::temp_dir().join(format!("chemcost-promote-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ccgb");
        chemcost_ml::persist::save_gb(&path, &tiny_model(1)).unwrap();

        let reg = ModelRegistry::new();
        reg.load_file("m", "aurora", &path).unwrap();
        reg.promote("m", tiny_model(99)).unwrap();
        assert_eq!(reg.reload("m").unwrap(), 3);
        // Operator reload invalidates the pre-promotion snapshot.
        assert!(reg.rollback("m").unwrap_err().contains("no prior"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_reload_and_promote_last_writer_wins() {
        let dir = std::env::temp_dir().join(format!("chemcost-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ccgb");
        chemcost_ml::persist::save_gb(&path, &tiny_model(1)).unwrap();

        let reg = Arc::new(ModelRegistry::new());
        reg.load_file("m", "aurora", &path).unwrap();

        let mut handles = Vec::new();
        for i in 0..4u64 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for j in 0..8u64 {
                    if (i + j) % 2 == 0 {
                        reg.promote("m", tiny_model(100 + i * 8 + j)).unwrap();
                    } else {
                        reg.reload("m").unwrap();
                    }
                    // Every interleaving must leave a servable model.
                    let r = reg.resolve(Some("m"), None).unwrap();
                    let probe = Matrix::from_fn(1, 4, |_, j| j as f64);
                    assert!(r.flat.predict_row(&[0.0, 1.0, 2.0, 3.0]).is_finite());
                    assert!(r.model.predict(&probe)[0].is_finite());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 32 swaps from version 1: versions are monotonic, no lost updates.
        assert_eq!(reg.resolve(Some("m"), None).unwrap().version, 33);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_reports_defaults() {
        let reg = ModelRegistry::new();
        reg.insert("a", "aurora", tiny_model(1));
        reg.insert("b", "frontier", tiny_model(2));
        reg.set_default("aurora", "a").unwrap();
        reg.set_default("frontier", "a").unwrap();
        let infos = reg.list();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].name, "a");
        assert_eq!(infos[0].default_for, vec!["aurora".to_string(), "frontier".to_string()]);
        assert!(infos[1].default_for.is_empty());
    }
}
