//! `chemcost-serve` — advisor-as-a-service.
//!
//! A dependency-light HTTP/1.1 JSON daemon that answers the paper's
//! user questions (shortest-time, budget, Pareto menu) over the network
//! from a registry of trained gradient-boosting runtime models:
//!
//! - `POST /v1/predict` — batch `(o, v, nodes, tile)` rows → predicted
//!   seconds and node-hours
//! - `POST /v1/advise` — `(o, v, goal)` → the same `Recommendation`s the
//!   offline `chemcost advise` CLI prints
//! - `GET /v1/models`, `POST /v1/models/{name}/reload` — model registry
//!   with versions and hot reload
//! - `POST /v1/observe`, `GET /v1/quality`,
//!   `GET /v1/quality/next_experiments` — the model-quality loop: report
//!   measured runtimes against issued predictions, read rolling accuracy
//!   and drift state, and get active-learning-ranked configurations to
//!   measure next (see [`quality`])
//! - `GET /v1/lifecycle`, `POST /v1/lifecycle/{promote,rollback,freeze}`
//!   — the in-service model lifecycle: background retraining on drift,
//!   shadow scoring, guarded auto-promotion, and operator overrides
//!   (see [`chemcost_lifecycle`])
//! - `GET /healthz`, `GET /metrics` — liveness and Prometheus metrics
//! - `POST /v1/shutdown` — graceful drain-and-exit
//!
//! Built on `std::net::TcpListener` plus a bounded worker threadpool;
//! requests beyond the queue capacity are shed with `503` instead of
//! buffering unboundedly. No external HTTP or JSON dependencies.

pub mod cache;
pub mod client;
pub mod fault;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod quality;
pub mod registry;
pub mod routes;

pub use cache::{AdviseCache, AdviseKey};
pub use client::{Client, ClientError, RetryPolicy};
pub use fault::{ChaosProfile, FaultKind, FaultPlane, FaultPlaneBuilder};
pub use metrics::Metrics;
pub use quality::{ObserveError, ObserveOutcome, QualityHub};
pub use registry::{ModelInfo, ModelRegistry, ResolvedModel};
pub use routes::{parse_deadline_ms, Deadline, Router};

use fault::TruncatingReader;
use http::{read_request, write_response, HttpError, Response};
use pool::ThreadPool;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-connection socket read timeout: an idle keep-alive client is
/// disconnected after this long so it cannot pin a worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    router: Router,
    workers: usize,
    queue_cap: usize,
    faults: Option<Arc<FaultPlane>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:8080"`, port 0 for ephemeral) and
    /// prepare `workers` handler threads. The connection queue defaults
    /// to `workers * 4`; override with [`Server::with_queue_cap`].
    pub fn bind(addr: &str, router: Router, workers: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            router,
            workers: workers.max(1),
            queue_cap: workers.max(1) * 4,
            faults: None,
        })
    }

    /// Override the worker-pool connection queue capacity (`chemcost
    /// serve --queue-cap`). Connections beyond `workers` in-flight plus
    /// `cap` queued are shed with `503`. Clamped to at least 1.
    pub fn with_queue_cap(mut self, cap: usize) -> Server {
        self.queue_cap = cap.max(1);
        self
    }

    /// Install a fault-injection plane (`chemcost serve --chaos`, or the
    /// builder API in tests). Wires the plane into the registry (so
    /// reloads can be poisoned) and into metrics (so injections surface
    /// as `chemcost_faults_injected_total`). Without this call the
    /// request path pays only a null check.
    pub fn with_faults(mut self, plane: Arc<FaultPlane>) -> Server {
        plane.bind_metrics(Arc::clone(self.router.metrics()));
        self.router.registry().set_fault_plane(Arc::clone(&plane));
        self.faults = Some(plane);
        self
    }

    /// The effective connection queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// The address actually bound (resolves an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve connections until `POST /v1/shutdown` arrives,
    /// then drain in-flight work and return.
    pub fn run(self) -> std::io::Result<()> {
        let local_addr = self.listener.local_addr()?;
        let pool = ThreadPool::new(self.workers, self.queue_cap);
        let metrics = Arc::clone(self.router.metrics());
        chemcost_obs::event!(
            chemcost_obs::Level::Info,
            "serve.start",
            addr = local_addr.to_string(),
            workers = self.workers,
            queue_cap = self.queue_cap,
        );
        for stream in self.listener.incoming() {
            if self.router.shutdown_requested() {
                break;
            }
            let mut stream = match stream {
                Ok(s) => s,
                Err(_) => continue, // transient accept failure
            };
            // Chaos: saturate pretends the queue is already full, forcing
            // the same structured-503 shed path real overload takes.
            if let Some(plane) = &self.faults {
                if plane.roll(fault::FaultKind::Saturate) {
                    metrics.record_shed();
                    let resp = Response::json(503, r#"{"error":"server overloaded"}"#.into());
                    let _ = write_response(&mut stream, &resp, false);
                    continue;
                }
            }
            // Keep a dup of the socket so an overloaded pool can still
            // answer 503 after the closure (owning the original) is dropped.
            let spare = stream.try_clone();
            let router = self.router.clone();
            let job_metrics = Arc::clone(&metrics);
            let job_faults = self.faults.clone();
            let enqueued = Instant::now();
            metrics.pool_enqueued();
            let job: pool::Job = Box::new(move || {
                job_metrics.pool_dequeued();
                handle_connection(stream, &router, local_addr, job_faults.as_deref(), enqueued)
            });
            if let Err(job) = pool.execute(job) {
                drop(job);
                // The connection never made it into the queue: undo the
                // depth bump and account the shed 503.
                metrics.pool_dequeued();
                metrics.record_shed();
                chemcost_obs::event!(
                    chemcost_obs::Level::Warn,
                    "http.shed",
                    queue_cap = self.queue_cap,
                    shed_total = metrics.shed_total(),
                );
                if let Ok(mut spare) = spare {
                    let resp = Response::json(503, r#"{"error":"server overloaded"}"#.into());
                    let _ = write_response(&mut spare, &resp, false);
                }
            }
        }
        // Dropping the pool drains queued connections and joins workers,
        // so every accepted request gets its response before we return.
        pool.join();
        // With no request left to enqueue retrains, stop the background
        // trainer: cancels queued jobs and joins the worker thread.
        self.router.lifecycle().shutdown();
        chemcost_obs::event!(
            chemcost_obs::Level::Info,
            "serve.stop",
            addr = local_addr.to_string()
        );
        // Every in-flight request has been answered; push whatever the
        // buffered sinks are still holding (including the stop marker
        // above) to durable storage before the process exits.
        chemcost_obs::flush();
        Ok(())
    }
}

/// Serve one connection: a keep-alive loop of read → route → respond.
///
/// `enqueued` is when the accept loop queued the connection — the first
/// request's deadline anchor, so pool-queue wait counts against its
/// budget. `faults` is the chaos plane (`None` in production: one branch,
/// no injection logic on the hot path).
fn handle_connection(
    stream: TcpStream,
    router: &Router,
    local_addr: SocketAddr,
    faults: Option<&FaultPlane>,
    enqueued: Instant,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Chaos: truncate-body makes the rest of this connection's request
    // stream end early, as if the client died mid-upload.
    let read_half: Box<dyn Read> = match faults {
        Some(plane) if plane.roll(fault::FaultKind::TruncateBody) => {
            Box::new(TruncatingReader::new(read_half, plane.truncate_after()))
        }
        _ => Box::new(read_half),
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut first_request = true;
    loop {
        // Chaos: slow-io stalls before the read, like a seizing disk or
        // a slow-loris client.
        if let Some(plane) = faults {
            if plane.roll(fault::FaultKind::SlowIo) {
                std::thread::sleep(plane.slow_io_delay());
            }
        }
        match read_request(&mut reader) {
            Ok(None) => break,
            Ok(Some(req)) => {
                // The first request rode the accept queue, so its budget
                // anchors at enqueue time; later keep-alive requests
                // anchor at when their bytes finished arriving.
                let arrived = if first_request { enqueued } else { Instant::now() };
                first_request = false;
                let keep_alive = req.keep_alive();
                let resp = router.handle_from(&req, arrived);
                // Chaos: drop-conn abandons the response mid-write —
                // the client sees a torn connection, never a torn body
                // that parses.
                if let Some(plane) = faults {
                    if plane.roll(fault::FaultKind::DropConn) {
                        let _ = writer.write_all(b"HTTP/1.1 ");
                        let _ = writer.flush();
                        break;
                    }
                }
                if write_response(&mut writer, &resp, keep_alive).is_err() {
                    break;
                }
                if router.shutdown_requested() {
                    // The accept loop is blocked in accept(); poke it so
                    // it observes the flag and stops.
                    let _ = TcpStream::connect(local_addr);
                    break;
                }
                if !keep_alive {
                    break;
                }
            }
            Err(HttpError::Io(_)) => break, // timeout or reset
            Err(HttpError::Malformed(msg)) => {
                let resp = Response::json(400, json::Json::obj([("error", msg.into())]).encode());
                let _ = write_response(&mut writer, &resp, false);
                break;
            }
            Err(HttpError::Unsupported(status, msg)) => {
                let resp =
                    Response::json(status, json::Json::obj([("error", msg.into())]).encode());
                let _ = write_response(&mut writer, &resp, false);
                break;
            }
        }
    }
}
