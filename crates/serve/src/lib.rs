//! `chemcost-serve` — advisor-as-a-service.
//!
//! A dependency-light HTTP/1.1 JSON daemon that answers the paper's
//! user questions (shortest-time, budget, Pareto menu) over the network
//! from a registry of trained gradient-boosting runtime models:
//!
//! - `POST /v1/predict` — batch `(o, v, nodes, tile)` rows → predicted
//!   seconds and node-hours
//! - `POST /v1/advise` — `(o, v, goal)` → the same `Recommendation`s the
//!   offline `chemcost advise` CLI prints
//! - `GET /v1/models`, `POST /v1/models/{name}/reload` — model registry
//!   with versions and hot reload
//! - `POST /v1/observe`, `GET /v1/quality`,
//!   `GET /v1/quality/next_experiments` — the model-quality loop: report
//!   measured runtimes against issued predictions, read rolling accuracy
//!   and drift state, and get active-learning-ranked configurations to
//!   measure next (see [`quality`])
//! - `GET /v1/lifecycle`, `POST /v1/lifecycle/{promote,rollback,freeze}`
//!   — the in-service model lifecycle: background retraining on drift,
//!   shadow scoring, guarded auto-promotion, and operator overrides
//!   (see [`chemcost_lifecycle`])
//! - `GET /healthz`, `GET /metrics` — liveness and Prometheus metrics
//! - `POST /v1/shutdown` — graceful drain-and-exit
//!
//! Built as an event-driven data plane (see [`event_loop`] and
//! `docs/SERVING.md`): one nonblocking epoll loop owns every socket —
//! HTTP/1.1 keep-alive and pipelining, bounded buffers, per-request
//! `503` shedding — while a bounded worker pool runs the handlers and a
//! micro-batcher ([`batcher`]) coalesces concurrent flat-model
//! evaluations into single batched calls. No external HTTP or JSON
//! dependencies.

pub mod batcher;
pub mod cache;
pub mod client;
pub mod event_loop;
pub mod fault;
pub mod health_bridge;
pub mod http;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod quality;
pub mod registry;
pub mod routes;
pub mod timeline;

pub use batcher::{Batcher, BatcherConfig, FlushReason};
pub use cache::{AdviseCache, AdviseKey};
pub use chemcost_health::{parse_duration, parse_slo_file, sparkline, HealthConfig, HealthHub};
pub use client::{Client, ClientError, RetryPolicy};
pub use event_loop::{EventLoopConfig, DEFAULT_MAX_CONNS};
pub use fault::{ChaosProfile, FaultKind, FaultPlane, FaultPlaneBuilder};
pub use health_bridge::{builtin_slos, HealthHandle, MetricsSampler};
pub use metrics::Metrics;
pub use quality::{ObserveError, ObserveOutcome, QualityHub};
pub use registry::{ModelInfo, ModelRegistry, ResolvedModel};
pub use routes::{parse_deadline_ms, Deadline, Router};
pub use timeline::{CompletedTimeline, FlightRecorder};

use pool::ThreadPool;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

/// Idle keep-alive connections are closed after this long, so a silent
/// client cannot pin per-connection state forever.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    router: Router,
    workers: usize,
    queue_cap: usize,
    max_conns: usize,
    batch_config: BatcherConfig,
    faults: Option<Arc<FaultPlane>>,
    health_config: Option<HealthConfig>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:8080"`, port 0 for ephemeral) and
    /// prepare `workers` handler threads. The connection queue defaults
    /// to `workers * 4`; override with [`Server::with_queue_cap`].
    pub fn bind(addr: &str, router: Router, workers: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            router,
            workers: workers.max(1),
            queue_cap: workers.max(1) * 4,
            max_conns: DEFAULT_MAX_CONNS,
            batch_config: BatcherConfig::default(),
            faults: None,
            health_config: Some(HealthConfig {
                slos: health_bridge::builtin_slos(),
                ..HealthConfig::default()
            }),
        })
    }

    /// Override the worker-pool compute queue capacity (`chemcost serve
    /// --queue-cap`). Requests beyond `workers` in-flight plus `cap`
    /// queued are answered `503` (the connection itself stays open).
    /// Clamped to at least 1.
    pub fn with_queue_cap(mut self, cap: usize) -> Server {
        self.queue_cap = cap.max(1);
        self
    }

    /// Override the open-connection budget (`chemcost serve
    /// --max-conns`). Accepts beyond it are shed with `503` + close.
    /// Clamped to at least 1.
    pub fn with_max_conns(mut self, max: usize) -> Server {
        self.max_conns = max.max(1);
        self
    }

    /// Override the micro-batcher tuning (`chemcost serve
    /// --batch-window-us` / `--batch-max`).
    pub fn with_batch_config(mut self, config: BatcherConfig) -> Server {
        self.batch_config =
            BatcherConfig { window: config.window, max_rows: config.max_rows.max(1) };
        self
    }

    /// Install a fault-injection plane (`chemcost serve --chaos`, or the
    /// builder API in tests). Wires the plane into the registry (so
    /// reloads can be poisoned) and into metrics (so injections surface
    /// as `chemcost_faults_injected_total`). Without this call the
    /// request path pays only a null check.
    pub fn with_faults(mut self, plane: Arc<FaultPlane>) -> Server {
        plane.bind_metrics(Arc::clone(self.router.metrics()));
        self.router.registry().set_fault_plane(Arc::clone(&plane));
        self.faults = Some(plane);
        self
    }

    /// Override the health plane's tuning (`chemcost serve
    /// --scrape-interval-ms` / `--slo-file`). Built-in SLOs are on by
    /// default; pass a config with the desired `slos` list (typically
    /// [`health_bridge::builtin_slos`] plus parsed `--slo-file` rules).
    pub fn with_health(mut self, config: HealthConfig) -> Server {
        self.health_config = Some(config);
        self
    }

    /// Disable the health plane entirely (`/v1/health` then answers
    /// "disabled"). Benches use this to keep the sampler thread out of
    /// latency baselines they compare against older builds.
    pub fn without_health(mut self) -> Server {
        self.health_config = None;
        self
    }

    /// The effective compute queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// The effective open-connection budget.
    pub fn max_conns(&self) -> usize {
        self.max_conns
    }

    /// The address actually bound (resolves an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the event loop until `POST /v1/shutdown` arrives, then drain
    /// in-flight work (forcing `Connection: close` on every persistent
    /// connection) and return.
    pub fn run(self) -> std::io::Result<()> {
        let local_addr = self.listener.local_addr()?;
        let pool = ThreadPool::new(self.workers, self.queue_cap);
        let metrics = Arc::clone(self.router.metrics());
        // The batcher outlives the event loop: workers blocked inside
        // `Batcher::predict` must get their answers before `pool.join()`
        // below can return.
        let batcher = Batcher::start(self.batch_config, Arc::clone(&metrics));
        self.router.install_batcher(Arc::clone(&batcher));
        // Start the health plane after the batcher so its very first
        // self-scrape already sees every pre-registered series.
        let health = self
            .health_config
            .as_ref()
            .map(|config| health_bridge::start(&self.router, config.clone()));
        chemcost_obs::event!(
            chemcost_obs::Level::Info,
            "serve.start",
            addr = local_addr.to_string(),
            workers = self.workers,
            queue_cap = self.queue_cap,
            max_conns = self.max_conns,
            batch_window_us = self.batch_config.window.as_micros() as u64,
            batch_max = self.batch_config.max_rows,
        );
        let config = EventLoopConfig { max_conns: self.max_conns, idle_timeout: READ_TIMEOUT };
        let result =
            event_loop::run(self.listener, self.router.clone(), &pool, self.faults.clone(), config);
        // Drain order matters: join the workers (they stop submitting),
        // then stop the batcher's collector, then the background trainer.
        pool.join();
        batcher.shutdown();
        self.router.lifecycle().shutdown();
        if let Some(health) = health {
            health.stop();
        }
        chemcost_obs::event!(
            chemcost_obs::Level::Info,
            "serve.stop",
            addr = local_addr.to_string()
        );
        // Every in-flight request has been answered; push whatever the
        // buffered sinks are still holding (including the stop marker
        // above) to durable storage before the process exits.
        chemcost_obs::flush();
        result
    }
}
