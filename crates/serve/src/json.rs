//! Hand-rolled JSON: the workspace has no `serde_json`, and the wire
//! types of the advisor service only need objects, arrays, numbers,
//! strings, booleans and null.
//!
//! Parsing is a plain recursive-descent pass with a depth limit; every
//! error carries the byte offset it occurred at. Encoding writes the
//! minimal text form (no pretty-printing): non-finite numbers encode as
//! `null`, since JSON has no representation for them.
//!
//! For the serving hot paths there is also a borrowing [`Scanner`]: a
//! flat cursor over the request text that yields `&str` slices and
//! `f64`s without building a [`Json`] tree — the predict/advise handlers
//! scan the canonical body shapes allocation-free and fall back to the
//! general parser (identical errors, identical semantics) on anything
//! unusual. The scanner deliberately recognises only a strict subset
//! (no escapes in strings, for instance); returning `None` always means
//! "let the general parser decide", never a verdict of its own.

use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Deepest allowed nesting of arrays/objects.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from key/value pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize to minimal JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Append one number exactly as [`Json::Num`] encodes it: `f64` Display
/// (the shortest round-trippable form) for finite values, `null`
/// otherwise. `pub(crate)` so direct-writing response builders stay
/// byte-compatible with tree encoding.
pub(crate) fn write_num(n: f64, out: &mut String) {
    if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

/// Append one string exactly as [`Json::Str`] encodes it (quoted and
/// escaped). `pub(crate)` for the same reason as [`write_num`].
pub(crate) fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { msg: msg.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected {text})")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => {
                self.pos = start;
                Err(self.err("invalid number"))
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

/// Borrowing cursor over request text for the serving fast paths.
///
/// Yields `&str` slices (escape-free strings only) and `f64`s without
/// building a [`Json`] tree. Every method returns `Option`: `None`
/// means "this body is outside the strict subset I recognise" and the
/// caller must fall back to [`Json::parse`], which then reproduces the
/// general semantics (including every error message) byte-for-byte.
///
/// Number scanning is an exact replica of the tree parser's grammar —
/// optional `-`, then the maximal run of `[0-9.eE+-]`, then
/// `str::parse::<f64>` with a finiteness check — so any number the
/// scanner accepts produces the *identical* `f64` the tree parser
/// would.
pub(crate) struct Scanner<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    pub(crate) fn new(src: &'a str) -> Self {
        Scanner { src, pos: 0 }
    }

    fn bytes(&self) -> &'a [u8] {
        self.src.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    pub(crate) fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consume `b` if it is the next byte; report whether it was.
    pub(crate) fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// True once every remaining byte is whitespace (the tree parser's
    /// "trailing characters" check passes).
    pub(crate) fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos == self.src.len()
    }

    /// A quoted string with no escapes and no control bytes, returned
    /// as a borrowed slice. Escaped or malformed strings yield `None`
    /// (fall back to the tree parser).
    pub(crate) fn string(&mut self) -> Option<&'a str> {
        if !self.eat(b'"') {
            return None;
        }
        let start = self.pos;
        loop {
            match self.peek()? {
                b'"' => {
                    let s = &self.src[start..self.pos];
                    self.pos += 1;
                    return Some(s);
                }
                b'\\' => return None,
                b if b < 0x20 => return None,
                _ => self.pos += 1,
            }
        }
    }

    /// A finite JSON number, scanned and parsed exactly like the tree
    /// parser. `None` for anything else (fall back).
    pub(crate) fn number(&mut self) -> Option<f64> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        match self.src[start..self.pos].parse::<f64>() {
            Ok(n) if n.is_finite() => Some(n),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            Json::parse(r#"{"rows": [{"o": 120, "v": 900}], "goal": "stq", "ok": true}"#).unwrap();
        assert_eq!(v.get("goal").and_then(Json::as_str), Some("stq"));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let rows = v.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows[0].get("o").and_then(Json::as_usize), Some(120));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("a\"b\\c\nd\te\u{0001}π".into());
        let text = original.encode();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::Str("é".into()));
        // Surrogate pair: 𝄞 (U+1D11E).
        assert_eq!(Json::parse(r#""𝄞""#).unwrap(), Json::Str("𝄞".into()));
        assert!(Json::parse(r#""\ud834""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn encode_round_trips_numbers_exactly() {
        for n in [0.0, 1.5, -3.25, 1e-9, 123456789.0, 0.1] {
            let text = Json::Num(n).encode();
            assert_eq!(Json::parse(&text).unwrap(), Json::Num(n), "{text}");
        }
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01x",
            "\"unterminated",
            "[1] garbage",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let e = Json::parse("[1, 2, %]").unwrap_err();
        assert_eq!(e.offset, 7);
        assert!(e.to_string().contains("byte 7"));
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn object_builder_and_display() {
        let v = Json::obj([("name", "gb".into()), ("version", 3usize.into())]);
        assert_eq!(v.to_string(), r#"{"name":"gb","version":3}"#);
    }

    #[test]
    fn duplicate_keys_first_wins_on_get() {
        let v = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn as_usize_rejects_non_integers() {
        assert_eq!(Json::Num(1.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(7.0).as_usize(), Some(7));
        assert_eq!(Json::Str("7".into()).as_usize(), None);
    }
}
