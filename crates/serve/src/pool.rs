//! Bounded worker threadpool.
//!
//! Connections are handed to a fixed set of worker threads through a
//! bounded channel; when the queue is full the caller gets the job back
//! and can shed load (the server answers 503) instead of buffering
//! unboundedly.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::thread::JoinHandle;

/// Work item: a closure executed once on a worker thread.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of named worker threads fed by a bounded queue.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    queue_cap: usize,
}

impl ThreadPool {
    /// Spawn `workers` threads sharing a queue of capacity `queue_cap`.
    pub fn new(workers: usize, queue_cap: usize) -> ThreadPool {
        assert!(workers > 0, "need at least one worker");
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = bounded(queue_cap);
        let handles = (0..workers)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("chemcost-serve-{i}"))
                    .spawn(move || {
                        // recv() errs only once all senders are dropped
                        // AND the queue is drained, so in-flight work
                        // always completes before shutdown.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { sender: Some(sender), workers: handles, queue_cap }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Capacity of the bounded job queue.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Queue a job without blocking. On a full or closed queue the job is
    /// handed back so the caller can reject the request instead.
    pub fn execute(&self, job: Job) -> Result<(), Job> {
        let Some(sender) = &self.sender else {
            return Err(job);
        };
        sender.try_send(job).map_err(|e| match e {
            TrySendError::Full(j) | TrySendError::Disconnected(j) => j,
        })
    }

    /// Stop accepting work, drain the queue, and join every worker.
    pub fn join(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs_before_join_returns() {
        let pool = ThreadPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            loop {
                let job: Job = {
                    let c = Arc::clone(&c);
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                };
                if pool.execute(job).is_ok() {
                    break;
                }
                std::thread::yield_now();
            }
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn full_queue_returns_job_to_caller() {
        // One worker blocked on a long job; capacity-1 queue fills after
        // a single extra submission.
        let pool = ThreadPool::new(1, 1);
        let (block_tx, block_rx) = crossbeam::channel::bounded::<()>(1);
        let (started_tx, started_rx) = crossbeam::channel::bounded::<()>(1);
        pool.execute(Box::new(move || {
            let _ = started_tx.send(());
            let _ = block_rx.recv();
        }))
        .ok()
        .expect("first job queued");
        started_rx.recv().expect("worker started");
        // Fill the queue slot, then one more must bounce.
        pool.execute(Box::new(|| {})).ok().expect("queue slot");
        let bounced = pool.execute(Box::new(|| {}));
        assert!(bounced.is_err(), "expected Full to hand the job back");
        block_tx.send(()).unwrap();
        pool.join();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ThreadPool::new(0, 1);
    }
}
