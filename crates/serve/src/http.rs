//! Minimal HTTP/1.1 framing: blocking streams and incremental buffers.
//!
//! Supports exactly what the service needs: request line + headers +
//! `Content-Length` bodies, keep-alive, pipelining, and plain responses.
//! Chunked transfer encoding is rejected; bodies and header sections are
//! size-limited so a misbehaving client cannot balloon memory.
//!
//! Two entry points share one grammar: [`read_request`] parses off a
//! blocking `BufRead` (tests, the retrying client's server stub), and
//! [`parse_request`] parses incrementally out of a byte buffer — the
//! event loop's per-connection state machine feeds it whatever bytes
//! have arrived and gets back either a complete request plus how many
//! bytes it consumed, or "need more". Size limits are enforced *while*
//! bytes accumulate, so an attacker streaming an endless header line is
//! rejected long before the connection buffer grows.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::ops::Deref;
use std::sync::Arc;

/// Longest accepted request line / header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;
/// Largest accepted request body, in bytes.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as sent ("GET", "POST", …).
    pub method: String,
    /// Request path, without query string.
    pub path: String,
    /// Raw query string (bytes after `?`, without the `?`; empty when
    /// the target had none).
    pub query: String,
    /// Header map; names lower-cased.
    pub headers: HashMap<String, String>,
    /// Request body (empty when no Content-Length).
    pub body: Vec<u8>,
}

impl Request {
    /// Build an in-memory request (used by tests and the bench harness —
    /// the router's `handle` doesn't need a socket). A `?` in `path`
    /// splits it into path + query like the wire parser would.
    pub fn new(method: &str, path: &str, body: &[u8]) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (path.to_string(), String::new()),
        };
        Request {
            method: method.to_string(),
            path,
            query,
            headers: HashMap::new(),
            body: body.to_vec(),
        }
    }

    /// Does the client ask to keep the connection open? HTTP/1.1
    /// defaults to yes unless `Connection: close`.
    pub fn keep_alive(&self) -> bool {
        !self.headers.get("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Value of one `key=value` query parameter, unescaped only for
    /// the characters the debug endpoints need (none — values are
    /// numbers and route labels).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// Response body bytes: owned, or shared out of the advise cache so a
/// warm cache hit replays the rendered answer without copying it.
#[derive(Debug, Clone)]
pub enum Body {
    /// Exclusively owned bytes (the common case: freshly rendered JSON).
    Bytes(Vec<u8>),
    /// A reference-counted string slab shared with the response cache; a
    /// hit is a refcount bump, not a copy.
    Shared(Arc<str>),
}

impl Body {
    /// The body bytes, whichever variant holds them.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Bytes(b) => b,
            Body::Shared(s) => s.as_bytes(),
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Is the body empty?
    pub fn is_empty(&self) -> bool {
        self.as_bytes().is_empty()
    }

    /// Extract owned bytes, copying only for the shared variant.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Body::Bytes(b) => b,
            Body::Shared(s) => s.as_bytes().to_vec(),
        }
    }
}

impl Deref for Body {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Body) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Body {}

impl From<Vec<u8>> for Body {
    fn from(b: Vec<u8>) -> Body {
        Body::Bytes(b)
    }
}

impl From<String> for Body {
    fn from(s: String) -> Body {
        Body::Bytes(s.into_bytes())
    }
}

impl From<Arc<str>> for Body {
    fn from(s: Arc<str>) -> Body {
        Body::Shared(s)
    }
}

impl From<&str> for Body {
    fn from(s: &str) -> Body {
        Body::Bytes(s.as_bytes().to_vec())
    }
}

/// An HTTP response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 400, …).
    pub status: u16,
    /// Value for the Content-Type header.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `X-Request-Id`), written verbatim
    /// after the standard ones.
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes (owned or cache-shared).
    pub body: Body,
}

impl Response {
    /// JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Body>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<Body>) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Was this an error response (status >= 400)?
    pub fn is_error(&self) -> bool {
        self.status >= 400
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket error (including read timeouts).
    Io(std::io::Error),
    /// The bytes on the wire were not a well-formed request. The message
    /// is safe to echo back in a 400.
    Malformed(String),
    /// Well-formed but unsupported (chunked encoding, oversized body…).
    /// `.0` is the status to answer with, `.1` the message.
    Unsupported(u16, String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::Unsupported(code, m) => write!(f, "unsupported ({code}): {m}"),
        }
    }
}

fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None); // clean EOF between requests
                }
                return Err(HttpError::Malformed("unexpected EOF mid-line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(HttpError::Unsupported(431, "header line too long".into()));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Parse an HTTP/1.x request line into `(method, path, query)`. The
/// query string is split off the target (the debug endpoints filter by
/// it); a non-1.x version is a 505.
fn parse_request_line(line: &str) -> Result<(String, String, String), HttpError> {
    let mut parts = line.split_whitespace();
    let method =
        parts.next().ok_or_else(|| HttpError::Malformed("empty request line".into()))?.to_string();
    let target =
        parts.next().ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version =
        parts.next().ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Unsupported(505, format!("unsupported version {version}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok((method, path, query))
}

/// Fold one header line into the map. Repeated header names fold into
/// one comma-joined value (RFC 9110 §5.2) instead of last-wins — so a
/// request smuggling two `X-Deadline-Ms` values yields "a, b", which
/// fails numeric parsing downstream rather than silently picking one.
fn insert_header(headers: &mut HashMap<String, String>, line: &str) -> Result<(), HttpError> {
    if headers.len() >= MAX_HEADERS {
        return Err(HttpError::Unsupported(431, "too many headers".into()));
    }
    let (name, value) = line
        .split_once(':')
        .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line:?}")))?;
    match headers.entry(name.trim().to_ascii_lowercase()) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            let joined: &mut String = e.get_mut();
            joined.push_str(", ");
            joined.push_str(value.trim());
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(value.trim().to_string());
        }
    }
    Ok(())
}

/// Validate framing headers and return the declared body length.
fn body_length(headers: &HashMap<String, String>) -> Result<usize, HttpError> {
    if headers.get("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(HttpError::Unsupported(501, "chunked transfer encoding not supported".into()));
    }
    match headers.get("content-length") {
        None => Ok(0),
        Some(len) => {
            let n: usize = len
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {len:?}")))?;
            if n > MAX_BODY {
                return Err(HttpError::Unsupported(413, "request body too large".into()));
            }
            Ok(n)
        }
    }
}

/// Read one request off the stream. `Ok(None)` means the client closed
/// the connection cleanly before sending another request.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let (method, path, query) = parse_request_line(&request_line)?;

    let mut headers = HashMap::new();
    loop {
        let line =
            read_line(reader)?.ok_or_else(|| HttpError::Malformed("EOF inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        insert_header(&mut headers, &line)?;
    }

    let len = body_length(&headers)?;
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::Malformed("EOF inside body".into())),
            Ok(n) => filled += n,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    Ok(Some(Request { method, path, query, headers, body }))
}

/// Try to parse one complete request out of the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when `buf` holds a complete
/// request in its first `consumed` bytes, `Ok(None)` when more bytes are
/// needed, and `Err` when the bytes already received can never become a
/// well-formed request. Limits are enforced incrementally: a header line
/// beyond [`MAX_LINE`] bytes, more than [`MAX_HEADERS`] headers, or a
/// declared body beyond [`MAX_BODY`] are rejected as soon as the
/// offending bytes arrive, even mid-request. This is the parser behind
/// the event loop's per-connection state machine; the grammar is shared
/// with [`read_request`].
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    let mut line_start = 0usize;
    let mut request_line: Option<(String, String, String)> = None;
    let mut headers = HashMap::new();
    let mut head_len: Option<usize> = None;
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            // `+ 1` mirrors read_line, which counts the not-yet-stripped
            // `\r` against the limit as well.
            if i - line_start + 1 > MAX_LINE {
                return Err(HttpError::Unsupported(431, "header line too long".into()));
            }
            continue;
        }
        let mut line = &buf[line_start..i];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let line = std::str::from_utf8(line)
            .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()))?;
        line_start = i + 1;
        if request_line.is_none() {
            request_line = Some(parse_request_line(line)?);
        } else if line.is_empty() {
            head_len = Some(i + 1);
            break;
        } else {
            insert_header(&mut headers, line)?;
        }
    }
    let Some(head_len) = head_len else {
        // Head incomplete. The per-line length check above already ran
        // for the partial trailing line; header count is bounded by
        // insert_header. Just wait for more bytes.
        return Ok(None);
    };
    let (method, path, query) = request_line.expect("head complete implies request line parsed");
    let len = body_length(&headers)?;
    if buf.len() < head_len + len {
        return Ok(None);
    }
    let body = buf[head_len..head_len + len].to_vec();
    Ok(Some((Request { method, path, query, headers, body }, head_len + len)))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "",
    }
}

/// Serialize a response to wire bytes. `keep_alive` controls the
/// `Connection` header: the event loop forces `close` during graceful
/// drain regardless of what the client asked for.
pub fn encode_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(192 + response.body.len());
    encode_response_into(response, keep_alive, &mut out);
    out
}

/// Append the wire encoding of `response` to `out` without any
/// intermediate buffer — the event loop serializes straight into each
/// connection's (reused) write buffer, so a warm response costs no
/// per-response allocation here.
pub fn encode_response_into(response: &Response, keep_alive: bool, out: &mut Vec<u8>) {
    let mut head = ByteWriter(out);
    let _ = write!(
        head,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&response.body);
}

/// `fmt::Write` adapter over a byte buffer (header text is always ASCII
/// here, and UTF-8 regardless, so pushing the formatted bytes is safe).
struct ByteWriter<'a>(&'a mut Vec<u8>);

impl fmt::Write for ByteWriter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

/// Serialize a response onto the stream (does not flush-close).
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    writer.write_all(&encode_response(response, keep_alive))?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
        assert!(r.keep_alive());
    }

    #[test]
    fn parses_post_with_content_length() {
        let r = parse("POST /v1/predict HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .unwrap()
            .unwrap();
        assert_eq!(r.body, b"{\"a\":1}");
        assert_eq!(r.headers.get("content-length").map(String::as_str), Some("7"));
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!r.keep_alive());
    }

    #[test]
    fn clean_eof_yields_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn truncated_body_is_malformed() {
        let e = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(matches!(e, HttpError::Malformed(_)), "{e}");
    }

    #[test]
    fn chunked_encoding_rejected() {
        let e = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert!(matches!(e, HttpError::Unsupported(501, _)), "{e}");
    }

    #[test]
    fn duplicate_headers_fold_comma_joined() {
        let r = parse("GET / HTTP/1.1\r\nX-Deadline-Ms: 500\r\nX-Deadline-Ms: 9000\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.headers.get("x-deadline-ms").map(String::as_str), Some("500, 9000"));
    }

    #[test]
    fn gateway_timeout_has_a_reason_phrase() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(504, "{}"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 504 Gateway Timeout\r\n"), "{text}");
    }

    #[test]
    fn query_string_is_split_off_the_path() {
        let r = parse("GET /v1/models?verbose=1 HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(r.path, "/v1/models");
        assert_eq!(r.query, "verbose=1");
        assert_eq!(r.query_param("verbose"), Some("1"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn query_params_parse_multiple_pairs() {
        let r = Request::new("GET", "/debug/requests?since_us=123&route=advise", b"");
        assert_eq!(r.path, "/debug/requests");
        assert_eq!(r.query_param("since_us"), Some("123"));
        assert_eq!(r.query_param("route"), Some("advise"));
        assert_eq!(r.query_param("flag"), None);
        let plain = Request::new("GET", "/healthz", b"");
        assert_eq!(plain.query, "");
        assert_eq!(plain.query_param("anything"), None);
    }

    #[test]
    fn oversized_declared_body_rejected() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        let e = parse(&raw).unwrap_err();
        assert!(matches!(e, HttpError::Unsupported(413, _)), "{e}");
    }

    #[test]
    fn response_serialization_round_trips() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn incremental_parse_matches_streaming_parse() {
        let raw =
            "POST /v1/predict HTTP/1.1\r\nX-Request-Id: r1\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let (inc, consumed) = parse_request(raw.as_bytes()).unwrap().unwrap();
        let streamed = parse(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(inc.method, streamed.method);
        assert_eq!(inc.path, streamed.path);
        assert_eq!(inc.headers, streamed.headers);
        assert_eq!(inc.body, streamed.body);
    }

    #[test]
    fn incremental_parse_needs_more_on_any_prefix() {
        let raw = "POST /v1/advise HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"o\":120}";
        for cut in 0..raw.len() {
            let r = parse_request(&raw.as_bytes()[..cut]).unwrap();
            assert!(r.is_none(), "prefix of {cut} bytes parsed early");
        }
        let (req, consumed) = parse_request(raw.as_bytes()).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(req.body, b"{\"o\":120}");
    }

    #[test]
    fn incremental_parse_consumes_only_the_first_pipelined_request() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let (first, consumed) = parse_request(raw.as_bytes()).unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        let (second, consumed2) = parse_request(&raw.as_bytes()[consumed..]).unwrap().unwrap();
        assert_eq!(second.path, "/metrics");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn incremental_parse_rejects_oversized_line_before_completion() {
        // No newline yet — a streaming attacker. Rejected as soon as the
        // line crosses MAX_LINE, not when (never) it completes.
        let raw = format!("GET /{} ", "a".repeat(MAX_LINE + 10));
        let e = parse_request(raw.as_bytes()).unwrap_err();
        assert!(matches!(e, HttpError::Unsupported(431, _)), "{e}");
    }

    #[test]
    fn incremental_parse_folds_duplicate_headers_like_streaming() {
        let raw = "GET / HTTP/1.1\r\nX-Deadline-Ms: 500\r\nX-Deadline-Ms: 9000\r\n\r\n";
        let (req, _) = parse_request(raw.as_bytes()).unwrap().unwrap();
        assert_eq!(req.headers.get("x-deadline-ms").map(String::as_str), Some("500, 9000"));
    }

    #[test]
    fn encode_response_matches_write_response() {
        let mut resp = Response::json(200, "{}");
        resp.headers.push(("X-Request-Id", "abc".into()));
        let mut streamed = Vec::new();
        write_response(&mut streamed, &resp, true).unwrap();
        assert_eq!(encode_response(&resp, true), streamed);
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut resp = Response::json(200, "{}");
        resp.headers.push(("X-Request-Id", "abc123".into()));
        let mut out = Vec::new();
        write_response(&mut out, &resp, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Request-Id: abc123\r\n"), "{text}");
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("X-Request-Id"));
        assert_eq!(body, "{}");
    }
}
