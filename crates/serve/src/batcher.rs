//! Micro-batched model inference.
//!
//! The event-loop server can have many `/v1/predict` and `/v1/advise`
//! requests in flight at once, and `BENCH_baseline.json` shows the flat
//! model is ~4.5× cheaper per row when rows are scored in one batched
//! call than one call per row. The [`Batcher`] exploits that: worker
//! threads hand it their evaluation matrices and block; a collector
//! thread coalesces everything that arrives within a bounded window
//! (default ≤200µs, `--batch-window-us`) or up to a row budget
//! (`--batch-max`) into **one** `FlatGbt::predict_batch` call per model,
//! then distributes the slices back.
//!
//! The window is a latency ceiling, not a floor: the collector flushes
//! early when the row budget fills (`full`), and — the common
//! low-traffic case — as soon as every thread currently inside a
//! predict-capable route has already submitted its matrix (`drain`),
//! because waiting any longer can only add latency, never batching.
//! A request whose own matrix already meets the row budget (an advise
//! sweep is ~465 rows) bypasses the queue entirely and scores inline.
//!
//! Each flush increments `chemcost_batch_flush_total{reason}` and
//! records the coalesced row count in `chemcost_batch_size`
//! (see `docs/SERVING.md`), and — when `Debug` logging is enabled —
//! emits one `batch.flush` obs event carrying the reason, job and row
//! counts, how long the oldest job waited, by how much that overran the
//! configured window, and the comma-joined trace ids of every request
//! in the batch so JSONL sinks can correlate a flush back to the access
//! log. Each job also remembers its submitter's trace id and submit
//! instant, which feed the per-request `batch_wait` timeline stage (see
//! [`crate::timeline`]).

use crate::metrics::Metrics;
use crate::timeline;
use chemcost_linalg::Matrix;
use chemcost_ml::flat::FlatGbt;
use chemcost_obs::{self as obs, Level};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound on how long a submitted matrix may wait for company.
pub const DEFAULT_WINDOW: Duration = Duration::from_micros(200);
/// Default row budget per coalesced batch.
pub const DEFAULT_MAX_ROWS: usize = 1024;

/// Why the collector closed a batch and called the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The coalesced row count reached the `--batch-max` budget.
    Full,
    /// The `--batch-window-us` wait expired.
    Window,
    /// Every thread inside a predict-capable route had already
    /// submitted — nothing more could join, so waiting would only add
    /// latency. The common flush at low concurrency.
    Drain,
    /// The batcher is shutting down; leftovers are scored, never dropped.
    Shutdown,
}

impl FlushReason {
    /// Every reason, in exposition order.
    pub const ALL: [FlushReason; 4] =
        [FlushReason::Full, FlushReason::Window, FlushReason::Drain, FlushReason::Shutdown];

    /// Position in [`FlushReason::ALL`] (metric array index).
    pub fn index(self) -> usize {
        match self {
            FlushReason::Full => 0,
            FlushReason::Window => 1,
            FlushReason::Drain => 2,
            FlushReason::Shutdown => 3,
        }
    }

    /// The Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            FlushReason::Full => "full",
            FlushReason::Window => "window",
            FlushReason::Drain => "drain",
            FlushReason::Shutdown => "shutdown",
        }
    }
}

/// One submitted evaluation: a matrix, the model to score it with, and
/// the channel the caller is blocked on.
struct Job {
    flat: Arc<FlatGbt>,
    /// Shared with the submitter, which keeps its own handle so it can
    /// score inline if the collector ever drops the job unanswered.
    x: Arc<Matrix>,
    /// Answer channel: the slice plus which reason closed the batch.
    tx: SyncSender<(Vec<f64>, FlushReason)>,
    /// The submitter's trace id, captured at submit so `batch.flush`
    /// events can name the requests a flush served.
    trace: Option<Arc<str>>,
    /// When the submitter handed the matrix over; the oldest job's age
    /// at flush time is the batch's measured window overrun.
    submitted: Instant,
}

/// State shared between submitters and the collector thread.
struct Shared {
    queue: Mutex<Vec<Job>>,
    /// Signaled on submit and on shutdown.
    arrived: Condvar,
    shutdown: AtomicBool,
    /// Threads currently inside a predict-capable route (whether or not
    /// they have submitted yet). The collector flushes early once every
    /// one of them is accounted for in the queue.
    interested: AtomicUsize,
}

/// Tuning knobs, from `--batch-window-us` / `--batch-max`.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Longest a submitted matrix waits for more work.
    pub window: Duration,
    /// Row budget per coalesced batch; a flush happens at or above it.
    pub max_rows: usize,
}

impl Default for BatcherConfig {
    fn default() -> BatcherConfig {
        BatcherConfig { window: DEFAULT_WINDOW, max_rows: DEFAULT_MAX_ROWS }
    }
}

/// Coalesces concurrent flat-model evaluations into single batched
/// calls. See the module docs for the policy.
pub struct Batcher {
    shared: Arc<Shared>,
    config: BatcherConfig,
    metrics: Arc<Metrics>,
    collector: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Start a batcher with its collector thread.
    pub fn start(config: BatcherConfig, metrics: Arc<Metrics>) -> Arc<Batcher> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            arrived: Condvar::new(),
            shutdown: AtomicBool::new(false),
            interested: AtomicUsize::new(0),
        });
        let batcher = Arc::new(Batcher {
            shared: Arc::clone(&shared),
            config,
            metrics: Arc::clone(&metrics),
            collector: Mutex::new(None),
        });
        let handle = {
            let shared = Arc::clone(&shared);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("chemcost-batcher".into())
                .spawn(move || collect_loop(&shared, config, &metrics))
                .expect("spawn batcher collector")
        };
        *batcher.collector.lock().unwrap() = Some(handle);
        batcher
    }

    /// The effective tuning knobs.
    pub fn config(&self) -> BatcherConfig {
        self.config
    }

    /// Mark the calling thread as inside a predict-capable route for the
    /// lifetime of the returned guard. The collector uses this count to
    /// flush as soon as no more submissions can arrive (`drain`).
    pub fn enter_route(self: &Arc<Self>) -> RouteGuard {
        self.shared.interested.fetch_add(1, Ordering::SeqCst);
        RouteGuard { shared: Arc::clone(&self.shared) }
    }

    /// Score `x` with `flat`, riding a coalesced batch when other
    /// submissions are in flight. Blocks the calling worker for at most
    /// roughly the batch window plus the batched model call itself.
    pub fn predict(&self, flat: &Arc<FlatGbt>, x: Matrix) -> Vec<f64> {
        let submitted = Instant::now();
        let rows = x.nrows();
        // Already a full batch on its own (e.g. an advise sweep):
        // coalescing cannot help, so score inline and skip the queue.
        if rows >= self.config.max_rows {
            self.metrics.record_batch_flush(FlushReason::Full, rows);
            let seconds = flat.predict_batch(&x);
            timeline::note_batch(submitted.elapsed(), rows, FlushReason::Full);
            return seconds;
        }
        let (tx, rx) = sync_channel(1);
        // Shared so the fallback arm below still has the inputs.
        let x = Arc::new(x);
        {
            let mut queue = self.shared.queue.lock().unwrap();
            // Check shutdown *under the queue lock*: the collector's
            // decision to exit (shutdown set + queue empty) is made
            // under this same lock, so either we observe shutdown here
            // and score inline, or the collector observes our job and
            // flushes it — a push after the collector has exited cannot
            // happen.
            if self.shared.shutdown.load(Ordering::SeqCst) {
                drop(queue);
                self.metrics.record_batch_flush(FlushReason::Shutdown, rows);
                let seconds = flat.predict_batch(&x);
                timeline::note_batch(submitted.elapsed(), rows, FlushReason::Shutdown);
                return seconds;
            }
            queue.push(Job {
                flat: Arc::clone(flat),
                x: Arc::clone(&x),
                tx,
                trace: obs::current_trace(),
                submitted,
            });
            self.shared.arrived.notify_all();
        }
        match rx.recv() {
            Ok((seconds, reason)) => {
                timeline::note_batch(submitted.elapsed(), rows, reason);
                seconds
            }
            // The collector dropped the job without answering — only
            // possible if its thread died, which is never expected.
            // Fall back to an inline call rather than failing requests.
            Err(_) => {
                self.metrics.record_batch_flush(FlushReason::Shutdown, rows);
                let seconds = flat.predict_batch(&x);
                timeline::note_batch(submitted.elapsed(), rows, FlushReason::Shutdown);
                seconds
            }
        }
    }

    /// Stop the collector: flush whatever is queued (reason `shutdown`)
    /// and join the thread. Idempotent. A `predict` racing this call is
    /// safe — it re-checks the flag under the queue lock and scores
    /// inline once set — though the server still joins its worker pool
    /// first so in-flight requests batch normally.
    pub fn shutdown(&self) {
        {
            // Store + notify under the queue lock, or a collector that
            // has checked the predicate but not yet parked misses the
            // wakeup and the join below never returns.
            let _queue = self.shared.queue.lock().unwrap();
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.shared.arrived.notify_all();
        }
        if let Some(handle) = self.collector.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// RAII counter for threads inside predict-capable routes.
pub struct RouteGuard {
    shared: Arc<Shared>,
}

impl Drop for RouteGuard {
    fn drop(&mut self) {
        self.shared.interested.fetch_sub(1, Ordering::SeqCst);
        // A collector mid-window waiting on `interested` to drop needs a
        // nudge, or it sleeps out the full window for nothing.
        self.shared.arrived.notify_all();
    }
}

/// The collector: wait for work, coalesce under the window, flush.
///
/// The job list and the row-concatenation scratch live here, outside the
/// loop, and are recycled flush after flush: swapping the queue out
/// hands its capacity back on the next cycle, so a steady request rate
/// reaches a state where a flush allocates only the per-job result
/// vectors it must send back.
fn collect_loop(shared: &Shared, config: BatcherConfig, metrics: &Metrics) {
    let mut jobs: Vec<Job> = Vec::new();
    let mut scratch: Vec<f64> = Vec::new();
    loop {
        let reason = {
            let mut queue = shared.queue.lock().unwrap();
            while queue.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                queue = shared.arrived.wait(queue).unwrap();
            }
            if queue.is_empty() {
                return; // shutdown with nothing left
            }
            let deadline = Instant::now() + config.window;
            let reason = loop {
                let rows: usize = queue.iter().map(|j| j.x.nrows()).sum();
                if rows >= config.max_rows {
                    break FlushReason::Full;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break FlushReason::Shutdown;
                }
                // Everyone inside a predict-capable route has already
                // submitted: flush now, nothing more is coming.
                if shared.interested.load(Ordering::SeqCst) <= queue.len() {
                    break FlushReason::Drain;
                }
                let now = Instant::now();
                if now >= deadline {
                    break FlushReason::Window;
                }
                let (q, _timeout) = shared.arrived.wait_timeout(queue, deadline - now).unwrap();
                queue = q;
            };
            // `jobs` comes back empty from the previous flush; the swap
            // donates its retained capacity to the queue.
            std::mem::swap(&mut *queue, &mut jobs);
            reason
        };
        flush(&mut jobs, reason, metrics, config.window, &mut scratch);
    }
}

/// Score a flushed set of jobs: group by model identity, one batched
/// call per model, and hand each caller its slice. Emits one
/// `batch.flush` obs event per flush (satellite of PR 8) before the
/// model calls, so the event's `waited_us` measures queueing, not
/// inference.
fn flush(
    jobs: &mut Vec<Job>,
    reason: FlushReason,
    metrics: &Metrics,
    window: Duration,
    scratch: &mut Vec<f64>,
) {
    if obs::enabled(Level::Debug) && !jobs.is_empty() {
        let rows: usize = jobs.iter().map(|j| j.x.nrows()).sum();
        // Age of the oldest job: how long the batch actually waited.
        let waited = jobs.iter().map(|j| j.submitted.elapsed()).max().unwrap_or_default();
        let overrun = waited.saturating_sub(window);
        let traces: Vec<&str> = jobs.iter().filter_map(|j| j.trace.as_deref()).collect();
        obs::event!(
            Level::Debug,
            "batch.flush",
            reason = reason.label(),
            jobs = jobs.len(),
            rows = rows,
            waited_us = waited.as_micros() as u64,
            window_overrun_us = overrun.as_micros() as u64,
            traces = traces.join(","),
        );
    }
    // Group by (model pointer, feature width). Vec scan, not a map: a
    // flush holds a handful of jobs, nearly always one group.
    let mut groups: Vec<(usize, usize, Vec<Job>)> = Vec::new();
    for job in jobs.drain(..) {
        let key = (Arc::as_ptr(&job.flat) as usize, job.x.ncols());
        match groups.iter_mut().find(|(p, c, _)| (*p, *c) == key) {
            Some((_, _, g)) => g.push(job),
            None => groups.push((key.0, key.1, vec![job])),
        }
    }
    for (_, cols, group) in groups {
        let total_rows: usize = group.iter().map(|j| j.x.nrows()).sum();
        metrics.record_batch_flush(reason, total_rows);
        if group.len() == 1 {
            let job = group.into_iter().next().expect("single-job group");
            let seconds = job.flat.predict_batch(&job.x);
            let _ = job.tx.send((seconds, reason));
            continue;
        }
        // Concatenate rows into the recycled scratch, lend it to the
        // Matrix for the batched call, then take it back for next time.
        scratch.clear();
        scratch.reserve(total_rows * cols);
        for job in &group {
            scratch.extend_from_slice(job.x.as_slice());
        }
        let x = Matrix::from_vec(total_rows, cols, std::mem::take(scratch));
        let seconds = group[0].flat.predict_batch(&x);
        *scratch = x.into_vec();
        let mut offset = 0;
        for job in group {
            let n = job.x.nrows();
            let _ = job.tx.send((seconds[offset..offset + n].to_vec(), reason));
            offset += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chemcost_ml::gradient_boosting::GradientBoosting;
    use chemcost_ml::Regressor;

    fn tiny_flat() -> Arc<FlatGbt> {
        let x = Matrix::from_fn(60, 4, |i, j| ((i * 7 + j * 3) % 13) as f64 + 1.0);
        let y: Vec<f64> = (0..60).map(|i| (i % 9) as f64 + 1.0).collect();
        let mut gb = GradientBoosting::new(10, 3, 0.3);
        gb.seed = 1;
        gb.fit(&x, &y).unwrap();
        Arc::new(FlatGbt::compile(&gb))
    }

    fn batcher(window_us: u64, max_rows: usize) -> (Arc<Batcher>, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::new());
        let config = BatcherConfig { window: Duration::from_micros(window_us), max_rows };
        (Batcher::start(config, Arc::clone(&metrics)), metrics)
    }

    fn some_rows(n: usize, salt: u64) -> Matrix {
        Matrix::from_fn(n, 4, |i, j| ((i as u64 * 5 + j as u64 * 11 + salt) % 17) as f64 + 1.0)
    }

    #[test]
    fn batched_results_match_direct_calls() {
        let flat = tiny_flat();
        let (batcher, _metrics) = batcher(200, 1024);
        let mut threads = Vec::new();
        for t in 0..8u64 {
            let flat = Arc::clone(&flat);
            let batcher = Arc::clone(&batcher);
            threads.push(std::thread::spawn(move || {
                let _guard = batcher.enter_route();
                let x = some_rows(3 + t as usize, t);
                let expect = flat.predict_batch(&x);
                let got = batcher.predict(&flat, x);
                assert_eq!(got, expect, "thread {t}: batched != direct");
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        batcher.shutdown();
    }

    #[test]
    fn distinct_models_in_one_flush_stay_separate() {
        let flat_a = tiny_flat();
        let flat_b = {
            let x = Matrix::from_fn(60, 4, |i, j| ((i * 3 + j * 7) % 11) as f64 + 2.0);
            let y: Vec<f64> = (0..60).map(|i| (i % 5) as f64 * 3.0 + 1.0).collect();
            let mut gb = GradientBoosting::new(10, 3, 0.3);
            gb.seed = 2;
            gb.fit(&x, &y).unwrap();
            Arc::new(FlatGbt::compile(&gb))
        };
        // A long window so both jobs land in the same flush.
        let (batcher, _metrics) = batcher(20_000, 1024);
        let mut threads = Vec::new();
        for (i, flat) in [flat_a, flat_b].into_iter().enumerate() {
            let batcher = Arc::clone(&batcher);
            threads.push(std::thread::spawn(move || {
                let _guard = batcher.enter_route();
                let x = some_rows(4, i as u64);
                let expect = flat.predict_batch(&x);
                assert_eq!(batcher.predict(&flat, x), expect, "model {i}");
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        batcher.shutdown();
    }

    #[test]
    fn oversized_submission_bypasses_the_queue() {
        let flat = tiny_flat();
        let (batcher, metrics) = batcher(200, 8);
        let _guard = batcher.enter_route();
        let x = some_rows(32, 9);
        let expect = flat.predict_batch(&x);
        assert_eq!(batcher.predict(&flat, x), expect);
        assert_eq!(metrics.batch_flushes(FlushReason::Full), 1);
        batcher.shutdown();
    }

    #[test]
    fn solo_submission_flushes_as_drain_without_waiting_the_window() {
        let flat = tiny_flat();
        // A pathologically long window: if the drain fast path broke,
        // this test would take half a second instead of microseconds.
        let (batcher, metrics) = batcher(500_000, 1024);
        let _guard = batcher.enter_route();
        let started = Instant::now();
        let _ = batcher.predict(&flat, some_rows(2, 1));
        assert!(
            started.elapsed() < Duration::from_millis(200),
            "solo predict waited the window: {:?}",
            started.elapsed()
        );
        assert_eq!(metrics.batch_flushes(FlushReason::Drain), 1);
        batcher.shutdown();
    }

    #[test]
    fn predict_after_shutdown_scores_inline_as_shutdown_flush() {
        let flat = tiny_flat();
        let (batcher, metrics) = batcher(200, 1024);
        batcher.shutdown();
        // The collector is gone; a late submitter must not hang or
        // panic — it scores inline and labels the flush `shutdown`.
        let x = some_rows(3, 5);
        let expect = flat.predict_batch(&x);
        assert_eq!(batcher.predict(&flat, x), expect);
        assert_eq!(metrics.batch_flushes(FlushReason::Shutdown), 1);
        assert_eq!(metrics.batch_flushes(FlushReason::Full), 0);
    }

    /// Satellite (PR 8): a flush emits one `batch.flush` obs event with
    /// the reason, size, window overrun, and the submitting request's
    /// trace id.
    #[test]
    fn flush_emits_a_batch_flush_event_with_traces() {
        let flat = tiny_flat();
        let (batcher, _metrics) = batcher(200, 1024);
        obs::set_level(Some(Level::Debug));
        let ring = Arc::new(obs::RingSink::new(64));
        let handle = obs::add_sink(ring.clone());
        {
            let _scope = obs::TraceScope::enter("batch-trace-1");
            let _guard = batcher.enter_route();
            let _ = batcher.predict(&flat, some_rows(3, 7));
        }
        // The collector emits from its own thread; wait for the record.
        let deadline = Instant::now() + Duration::from_secs(2);
        let event = loop {
            if let Some(e) = ring.events_named("batch.flush").into_iter().next() {
                break e;
            }
            assert!(Instant::now() < deadline, "no batch.flush event arrived");
            std::thread::sleep(Duration::from_millis(5));
        };
        obs::remove_sink(handle);
        assert_eq!(event.field("reason"), Some(&obs::Value::Str("drain".into())));
        assert_eq!(event.field("jobs"), Some(&obs::Value::U64(1)));
        assert_eq!(event.field("rows"), Some(&obs::Value::U64(3)));
        assert!(event.field("waited_us").is_some());
        assert!(event.field("window_overrun_us").is_some());
        match event.field("traces") {
            Some(obs::Value::Str(t)) => assert!(t.contains("batch-trace-1"), "traces: {t}"),
            other => panic!("traces field missing or mistyped: {other:?}"),
        }
        batcher.shutdown();
    }

    #[test]
    fn shutdown_flushes_leftovers_and_is_idempotent() {
        let flat = tiny_flat();
        let (batcher, _metrics) = batcher(1_000_000, 1024);
        // Two interested threads, one submits: the collector waits for
        // the second... which never submits. Shutdown must flush.
        let guard_a = batcher.enter_route();
        let _guard_b = batcher.enter_route();
        let b2 = Arc::clone(&batcher);
        let flat2 = Arc::clone(&flat);
        let t = std::thread::spawn(move || {
            let x = some_rows(2, 3);
            let expect = flat2.predict_batch(&x);
            assert_eq!(b2.predict(&flat2, x), expect);
        });
        std::thread::sleep(Duration::from_millis(50));
        batcher.shutdown();
        t.join().unwrap();
        batcher.shutdown(); // second call is a no-op
        drop(guard_a);
    }
}
