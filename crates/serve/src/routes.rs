//! Request routing and the JSON API surface.
//!
//! `Router::handle` is a pure function from `Request` to `Response` —
//! no sockets involved — so the same code path is driven by the TCP
//! server, the end-to-end tests, and the throughput benchmarks.
//!
//! The two model-query endpoints ride the fast inference path:
//! `/v1/predict` and `/v1/advise` both evaluate the registry's compiled
//! [`chemcost_ml::flat::FlatGbt`] (quantized traversal, within the
//! documented `QUANT_REL_TOL` of the recursive ensemble and identical
//! across the batched/unbatched serving paths), `/v1/advise` runs **one**
//! candidate sweep per request via [`Advisor::sweep`] no matter how many
//! questions the body asks, and fully-answered advise responses are
//! replayed from a keyed, sharded LRU [`AdviseCache`] until the model is
//! reloaded — a warm hit probes with a borrowed key and replays the
//! `Arc<str>` body without copying it.

use crate::batcher::{Batcher, RouteGuard};
use crate::cache::{AdviseCache, AdviseKeyRef, CachedRec};
use crate::http::{Body, Request, Response};
use crate::json::{self, Json, Scanner};
use crate::metrics::{
    build_info, AdviseStage, DeadlineStage, LifecycleMetricsBridge, Metrics, Route,
};
use crate::quality::{ObserveError, ObserveOutcome, QualityHub};
use crate::registry::{ModelRegistry, ResolvedModel};
use crate::timeline::FlightRecorder;
use chemcost_core::advisor::{Advisor, Goal, Recommendation};
use chemcost_lifecycle::{
    LifecycleConfig, LifecycleHub, LifecycleState, PromotionTicket, RetrainReason, RetrainRequest,
    ShadowVerdict,
};
use chemcost_linalg::Matrix;
use chemcost_ml::persist::save_gb_with_lineage;
use chemcost_obs::{self as obs, Level};
use chemcost_sim::machine::by_name;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Most rows accepted in one `/v1/predict` batch.
const MAX_PREDICT_ROWS: usize = 10_000;

/// Default capacity of the advise recommendation cache.
const DEFAULT_CACHE_CAPACITY: usize = 512;

/// How recently the pool must have shed a connection for `/v1/advise`
/// to prefer a demoted (stale) cached answer over running a sweep.
const STALE_SERVE_WINDOW: Duration = Duration::from_secs(5);

/// A request's time budget, anchored at its arrival (enqueue) instant so
/// queue wait counts against it. Built from the `X-Deadline-Ms` header,
/// falling back to `--default-deadline-ms`.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    /// `None` when `arrived + budget` overflows `Instant` — effectively
    /// unbounded, which is what a multi-century budget means.
    expires: Option<Instant>,
    budget_ms: u64,
}

impl Deadline {
    /// A budget of `budget_ms` starting at `arrived`.
    pub fn new(arrived: Instant, budget_ms: u64) -> Deadline {
        Deadline { expires: arrived.checked_add(Duration::from_millis(budget_ms)), budget_ms }
    }

    /// Has the budget run out?
    pub fn expired(&self) -> bool {
        self.expires.is_some_and(|e| Instant::now() >= e)
    }

    /// Milliseconds of budget left (saturating at zero).
    pub fn remaining_ms(&self) -> u64 {
        match self.expires {
            Some(e) => e.saturating_duration_since(Instant::now()).as_millis() as u64,
            None => u64::MAX,
        }
    }

    /// The budget the client asked for.
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }
}

/// Parse the `X-Deadline-Ms` request header. `Ok(None)` means the header
/// is absent; the error string is safe to echo back in a 400. Duplicate
/// headers arrive comma-joined from the parser and are rejected here —
/// two conflicting budgets is a client bug, not a tiebreak to guess at.
pub fn parse_deadline_ms(req: &Request) -> Result<Option<u64>, String> {
    let Some(raw) = req.headers.get("x-deadline-ms") else {
        return Ok(None);
    };
    let raw = raw.trim();
    if raw.contains(',') {
        return Err(format!("conflicting X-Deadline-Ms values: {raw:?}"));
    }
    let ms: u64 = raw.parse().map_err(|_| {
        format!("X-Deadline-Ms must be a positive integer of milliseconds, got {raw:?}")
    })?;
    if ms == 0 {
        return Err(
            "X-Deadline-Ms: 0 allows no time at all; omit the header for no deadline".into()
        );
    }
    Ok(Some(ms))
}

/// Requests slower than this get a `http.slow` warning record.
/// Overridable in milliseconds via `CHEMCOST_SLOW_MS`.
fn slow_threshold() -> Duration {
    static THRESHOLD: OnceLock<Duration> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("CHEMCOST_SLOW_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(500))
    })
}

/// Shared request handler: model registry + metrics + shutdown signal.
#[derive(Clone)]
pub struct Router {
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    cache: Arc<AdviseCache>,
    quality: Arc<QualityHub>,
    lifecycle: Arc<LifecycleHub>,
    shutdown: Arc<AtomicBool>,
    /// Budget applied to requests that don't send `X-Deadline-Ms`.
    default_deadline_ms: Option<u64>,
    /// Micro-batcher coalescing concurrent flat-model evaluations.
    /// Installed once by `Server::run`; empty in tests and benches that
    /// drive the router in-process, which then score directly — the
    /// handler stays a pure function either way.
    batcher: Arc<OnceLock<Arc<Batcher>>>,
    /// Flight recorder behind `GET /debug/requests`: the event loop
    /// records every completed request timeline here.
    flight: Arc<FlightRecorder>,
    /// Health hub behind `GET /v1/health` and `GET /debug/slo`.
    /// Installed once by `Server::run` (like the batcher); absent in
    /// routers driven in-process, which then answer "disabled".
    health: Arc<OnceLock<Arc<chemcost_health::HealthHub>>>,
}

impl Router {
    /// Build a router over a registry with fresh metrics.
    pub fn new(registry: Arc<ModelRegistry>) -> Router {
        Router::with_cache_capacity(registry, DEFAULT_CACHE_CAPACITY)
    }

    /// Build a router whose advise cache holds at most `capacity` entries.
    pub fn with_cache_capacity(registry: Arc<ModelRegistry>, capacity: usize) -> Router {
        Router::with_lifecycle_config(registry, capacity, LifecycleConfig::default())
    }

    /// Build a router with explicit lifecycle tuning. The soak tests use
    /// this to shrink shadow windows and pool triggers so the full
    /// retrain → shadow → promote loop closes in seconds.
    pub fn with_lifecycle_config(
        registry: Arc<ModelRegistry>,
        capacity: usize,
        lifecycle_config: LifecycleConfig,
    ) -> Router {
        let metrics = Arc::new(Metrics::new());
        let quality = Arc::new(QualityHub::new(Arc::clone(&metrics)));
        let lifecycle = Arc::new(LifecycleHub::with_observer(
            lifecycle_config,
            Box::new(LifecycleMetricsBridge(Arc::clone(&metrics))),
        ));
        // Pre-register every serving group so the quality and lifecycle
        // series exist on the very first /metrics scrape, not only after
        // traffic.
        for info in registry.list() {
            quality.register_group(&info.name, info.version, &info.machine);
            lifecycle.register_group(&info.name, &info.machine);
        }
        Router {
            registry,
            metrics,
            cache: Arc::new(AdviseCache::new(capacity)),
            quality,
            lifecycle,
            shutdown: Arc::new(AtomicBool::new(false)),
            default_deadline_ms: None,
            batcher: Arc::new(OnceLock::new()),
            flight: Arc::new(FlightRecorder::new()),
            health: Arc::new(OnceLock::new()),
        }
    }

    /// The flight recorder served from `GET /debug/requests`.
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// Install the health hub all clones of this router will serve
    /// `GET /v1/health` and `GET /debug/slo` from. One-shot, like
    /// [`Router::install_batcher`].
    pub fn install_health(&self, hub: Arc<chemcost_health::HealthHub>) {
        let _ = self.health.set(hub);
    }

    /// The installed health hub, if any.
    pub fn health(&self) -> Option<&Arc<chemcost_health::HealthHub>> {
        self.health.get()
    }

    /// Install the micro-batcher all clones of this router will score
    /// `/v1/predict` and `/v1/advise` through. One-shot: later calls on
    /// the same router (or any clone) are ignored.
    pub fn install_batcher(&self, batcher: Arc<Batcher>) {
        let _ = self.batcher.set(batcher);
    }

    /// The installed micro-batcher, if any.
    pub fn batcher(&self) -> Option<&Arc<Batcher>> {
        self.batcher.get()
    }

    /// Mark the calling thread as inside a predict-capable route while
    /// the guard lives, so the batcher knows whether more submissions
    /// can still arrive. `None` (no batcher installed) costs nothing.
    ///
    /// The event loop also takes a guard per *parsed* predict request at
    /// worker-handoff time (see `event_loop::EventLoop::dispatch`):
    /// requests sitting in the compute queue can still join a batch, so
    /// counting them keeps the collector from draining a micro-batch
    /// while queued submitters are seconds of scheduling away. Handlers
    /// keep their own guard for in-process callers (tests, benches, the
    /// CLI) that never cross the event loop.
    fn enter_batched_route(&self) -> Option<RouteGuard> {
        self.batcher.get().map(Batcher::enter_route)
    }

    /// Whether `path` routes to a handler that submits to the batcher —
    /// the event loop pins batch interest across the worker-queue wait
    /// for exactly these requests.
    pub(crate) fn is_batched_path(&self, path: &str) -> bool {
        self.batcher.get().is_some() && matches!(path, "/v1/predict" | "/v1/advise")
    }

    /// Take a batch-interest guard (see [`Router::enter_batched_route`]);
    /// `pub(crate)` for the event loop's queued-request interest.
    pub(crate) fn batch_interest(&self) -> Option<RouteGuard> {
        self.enter_batched_route()
    }

    /// Apply `ms` as the deadline for requests without `X-Deadline-Ms`
    /// (`chemcost serve --default-deadline-ms`). `None` disables it.
    pub fn with_default_deadline_ms(mut self, ms: Option<u64>) -> Router {
        self.default_deadline_ms = ms.filter(|&ms| ms > 0);
        self
    }

    /// The model registry behind this router.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The metrics this router records into.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The model-quality tracker behind `/v1/observe` and `/v1/quality`.
    pub fn quality(&self) -> &Arc<QualityHub> {
        &self.quality
    }

    /// The retrain/shadow/promote machinery behind `GET /v1/lifecycle`.
    pub fn lifecycle(&self) -> &Arc<LifecycleHub> {
        &self.lifecycle
    }

    /// Has `POST /v1/shutdown` been received?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The flag `POST /v1/shutdown` sets (shared with the accept loop).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Dispatch one request, recording metrics (count, errors, latency)
    /// and the access log. Every record emitted while handling carries
    /// the request's trace id: the client's `X-Request-Id` when it sent
    /// one, a fresh monotonic id otherwise; either way the id is echoed
    /// back in the response's `X-Request-Id` header.
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_from(req, Instant::now())
    }

    /// Like [`Router::handle`] but anchored at `arrived` — the instant
    /// the request entered the server (its enqueue time) — so time spent
    /// waiting in the worker-pool queue counts against the deadline.
    pub fn handle_from(&self, req: &Request, arrived: Instant) -> Response {
        let started = Instant::now();
        let trace_id: Arc<str> = match req.headers.get("x-request-id").map(|v| v.trim()) {
            Some(id) if !id.is_empty() => Arc::from(id),
            _ => Arc::from(obs::next_trace_id()),
        };
        let _trace = obs::TraceScope::enter(Arc::clone(&trace_id));
        // Hand the resolved id to the event loop's timeline capture (a
        // no-op when the router is driven in-process).
        crate::timeline::note_trace(&trace_id);
        obs::event!(
            Level::Debug,
            "http.accept",
            method = req.method.as_str(),
            path = req.path.as_str(),
        );
        let deadline = parse_deadline_ms(req)
            .map(|header_ms| header_ms.or(self.default_deadline_ms))
            .map(|ms| ms.map(|ms| Deadline::new(arrived, ms)));
        if let Ok(Some(d)) = &deadline {
            obs::event!(
                Level::Debug,
                "http.deadline",
                budget_ms = d.budget_ms(),
                remaining_ms = d.remaining_ms(),
            );
        }
        self.metrics.inc_in_flight();
        let (route, mut response) = self.dispatch(req, deadline);
        self.metrics.dec_in_flight();
        // Two clocks (satellite of PR 8): `handler` is pure handler
        // time (the per-route latency histograms keep their meaning),
        // while the access log and the slow-request warning measure
        // from `arrived` — the deadline anchor — so queue and batch
        // wait count toward them. `max` guards callers passing a future
        // `arrived` (never the event loop, but `Instant` math panics).
        let handler = started.elapsed();
        let total = arrived.elapsed().max(handler);
        self.metrics.record(route, response.is_error(), handler);
        response.headers.push(("X-Request-Id", trace_id.to_string()));
        obs::event!(
            Level::Info,
            "http.request",
            method = req.method.as_str(),
            path = req.path.as_str(),
            route = route.label(),
            status = response.status,
            duration_us = total.as_micros() as u64,
            handler_us = handler.as_micros() as u64,
        );
        if total >= slow_threshold() {
            obs::event!(
                Level::Warn,
                "http.slow",
                method = req.method.as_str(),
                path = req.path.as_str(),
                route = route.label(),
                status = response.status,
                duration_us = total.as_micros() as u64,
                handler_us = handler.as_micros() as u64,
                threshold_ms = slow_threshold().as_millis() as u64,
            );
        }
        response
    }

    fn dispatch(
        &self,
        req: &Request,
        deadline: Result<Option<Deadline>, String>,
    ) -> (Route, Response) {
        let deadline = match deadline {
            Ok(d) => d,
            Err(msg) => return (Route::Other, error(400, &msg)),
        };
        // Queue-dequeue stage: a request that burned its whole budget
        // waiting in the pool queue is answered 504 without touching a
        // model — the worker frees up immediately.
        if let Some(d) = deadline.filter(|d| d.expired()) {
            return (Route::Other, self.deadline_504(DeadlineStage::Queue, d));
        }
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => {
                (Route::Healthz, Response::json(200, r#"{"status":"ok"}"#.to_string()))
            }
            ("GET", "/metrics") => (Route::Metrics, Response::text(200, self.metrics.render())),
            ("GET", "/v1/models") => (Route::Models, self.models()),
            ("GET", "/v1/quality") => (Route::Quality, self.quality_report()),
            ("GET", "/v1/quality/next_experiments") => {
                (Route::Quality, self.next_experiments_report())
            }
            ("GET", "/v1/lifecycle") => (Route::Lifecycle, self.lifecycle_report()),
            ("GET", "/v1/health") => (Route::Health, self.health_report()),
            ("GET", "/debug/slo") => (Route::Debug, self.debug_slo()),
            ("GET", "/debug/requests") => {
                let since_us =
                    req.query_param("since_us").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
                let route_filter = req.query_param("route").filter(|r| !r.is_empty());
                (
                    Route::Debug,
                    Response::json(
                        200,
                        self.flight.to_json_filtered(since_us, route_filter).encode(),
                    ),
                )
            }
            ("POST", "/v1/lifecycle/promote") => {
                (Route::Lifecycle, self.lifecycle_promote(&req.body))
            }
            ("POST", "/v1/lifecycle/rollback") => {
                (Route::Lifecycle, self.lifecycle_rollback(&req.body))
            }
            ("POST", "/v1/lifecycle/freeze") => {
                (Route::Lifecycle, self.lifecycle_freeze(&req.body))
            }
            ("POST", "/v1/predict") => (Route::Predict, self.predict(&req.body)),
            ("POST", "/v1/advise") => (Route::Advise, self.advise(&req.body, deadline)),
            ("POST", "/v1/observe") => (Route::Observe, self.observe(&req.body)),
            ("POST", "/v1/shutdown") => {
                self.shutdown.store(true, Ordering::SeqCst);
                (Route::Shutdown, Response::json(200, r#"{"status":"shutting down"}"#.to_string()))
            }
            ("POST", path) => {
                if let Some(name) =
                    path.strip_prefix("/v1/models/").and_then(|rest| rest.strip_suffix("/reload"))
                {
                    (Route::Reload, self.reload(name))
                } else {
                    (Route::Other, error(404, &format!("no such endpoint {path}")))
                }
            }
            ("GET" | "HEAD", path) => {
                (Route::Other, error(404, &format!("no such endpoint {path}")))
            }
            (method, _) => (Route::Other, error(405, &format!("method {method} not allowed"))),
        }
    }

    /// `GET /v1/health`: the SLO verdict as a readiness probe — 200
    /// while healthy, 503 while any critical SLO is firing. Without an
    /// installed hub (in-process routers, health disabled) it reports
    /// 200/"disabled" so probes don't flap on configuration.
    fn health_report(&self) -> Response {
        match self.health.get() {
            Some(hub) => {
                let (status, body) = hub.health_json();
                Response::json(status, body)
            }
            None => Response::json(200, r#"{"status":"disabled","slos":[]}"#.to_string()),
        }
    }

    /// `GET /debug/slo`: ring accounting plus per-SLO evaluation
    /// history (the `chemcost health` sparkline source).
    fn debug_slo(&self) -> Response {
        match self.health.get() {
            Some(hub) => Response::json(200, hub.debug_json()),
            None => Response::json(200, r#"{"status":"disabled","slos":[]}"#.to_string()),
        }
    }

    fn models(&self) -> Response {
        let models: Vec<Json> = self
            .registry
            .list()
            .into_iter()
            .map(|info| {
                Json::obj([
                    ("name", info.name.into()),
                    ("version", Json::Num(info.version as f64)),
                    ("machine", info.machine.into()),
                    (
                        "path",
                        match info.path {
                            Some(p) => p.display().to_string().into(),
                            None => Json::Null,
                        },
                    ),
                    (
                        "default_for",
                        Json::Arr(info.default_for.into_iter().map(Json::from).collect()),
                    ),
                ])
            })
            .collect();
        Response::json(200, Json::obj([("models", Json::Arr(models))]).encode())
    }

    fn reload(&self, name: &str) -> Response {
        match self.registry.reload(name) {
            Ok(version) => {
                // The version-in-key already prevents silent stale hits;
                // demotion keeps the dead version's answers around as
                // last-resort overload fallbacks instead of dropping them.
                let demoted = self.cache.demote_model(name, version);
                self.metrics.set_cache_entries(self.cache.len());
                self.metrics.mark_model_fresh();
                // Track the new generation's quality from its first answer,
                // and flush buffered obs lines so the reload marker reaches
                // durable sinks even if the process dies mid-generation.
                if let Ok(resolved) = self.registry.resolve(Some(name), None) {
                    self.quality.register_group(&resolved.name, version, &resolved.machine);
                }
                obs::event!(
                    Level::Info,
                    "registry.reload",
                    model = name,
                    version = version,
                    cache_demoted = demoted,
                );
                obs::flush();
                Response::json(
                    200,
                    Json::obj([("model", name.into()), ("version", Json::Num(version as f64))])
                        .encode(),
                )
            }
            Err(e) => {
                let status = if e.contains("no model named") { 404 } else { 500 };
                if status == 500 {
                    // Stale-while-revalidate: the registry kept the
                    // last-good model live; start (or continue) the
                    // staleness clock and tell the client what is still
                    // being served.
                    self.metrics.record_reload_failure();
                    obs::event!(
                        Level::Error,
                        "registry.reload_failed",
                        model = name,
                        error = e.as_str(),
                        staleness_s = self.metrics.model_staleness_seconds(),
                    );
                }
                let mut fields: Vec<(&'static str, Json)> = vec![("error", e.as_str().into())];
                if let Ok(still) = self.registry.resolve(Some(name), None) {
                    fields.push(("serving_model", still.name.into()));
                    fields.push(("serving_version", Json::Num(still.version as f64)));
                }
                Response::json(status, Json::obj(fields).encode())
            }
        }
    }

    fn predict(&self, body: &[u8]) -> Response {
        // Declare interest to the batcher before parsing: a concurrent
        // sibling mid-parse still counts as a pending submission.
        let _batch_interest = self.enter_batched_route();
        // Fast scan of the canonical body shape: borrowed strings, no
        // Json tree. Anything unusual (escapes, extra keys, bad values)
        // falls back to the tree parser, which owns every error message.
        if let Some((features, model, machine)) =
            std::str::from_utf8(body).ok().and_then(scan_predict)
        {
            let resolved = match self.registry.resolve(model, machine) {
                Ok(r) => r,
                Err(e) => return error(404, &e),
            };
            return self.finish_predict(resolved, features);
        }
        let body = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let resolved = match self.registry.resolve(
            body.get("model").and_then(Json::as_str),
            body.get("machine").and_then(Json::as_str),
        ) {
            Ok(r) => r,
            Err(e) => return error(404, &e),
        };
        let Some(rows) = body.get("rows").and_then(Json::as_array) else {
            return error(400, "missing \"rows\" array");
        };
        if rows.is_empty() {
            return error(400, "\"rows\" is empty");
        }
        if rows.len() > MAX_PREDICT_ROWS {
            return error(400, &format!("too many rows (max {MAX_PREDICT_ROWS})"));
        }
        let mut features = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let mut parsed = [0.0f64; 4];
            for (slot, key) in parsed.iter_mut().zip(["o", "v", "nodes", "tile"]) {
                match row.get(key).and_then(Json::as_f64) {
                    Some(n) if n > 0.0 && n.is_finite() => *slot = n,
                    _ => {
                        return error(400, &format!("rows[{i}]: missing or non-positive \"{key}\""))
                    }
                }
            }
            features.push(parsed);
        }
        self.finish_predict(resolved, features)
    }

    /// Inference + response encoding shared by the fast-scanned and
    /// tree-parsed predict paths. Features are already validated.
    fn finish_predict(&self, resolved: ResolvedModel, features: Vec<[f64; 4]>) -> Response {
        // Shadow-score the request's first row so a candidate in Shadow
        // sees live /v1/predict traffic (and poison candidates are caught)
        // without the response or its latency depending on the result.
        self.lifecycle.shadow_predict(&resolved.name, &resolved.machine, &features[0]);
        let x = Matrix::from_fn(features.len(), 4, |i, j| features[i][j]);
        // Flat inference runs the quantized traversal: within QUANT_REL_TOL
        // of resolved.model's recursive path, and bit-identical whether or
        // not it rides the micro-batcher — under the event-loop server the
        // call coalesces with concurrent requests into shared batches.
        let seconds = match self.batcher.get() {
            Some(batcher) => batcher.predict(&resolved.flat, x),
            None => resolved.flat.predict_batch(&x),
        };
        // Direct-write the response: byte-identical to encoding a Json
        // tree (write_num/write_escaped are the tree encoder's own
        // writers) without allocating per-row objects.
        let mut out = String::with_capacity(64 + resolved.name.len() + seconds.len() * 48);
        out.push_str("{\"model\":");
        json::write_escaped(&resolved.name, &mut out);
        out.push_str(",\"model_version\":");
        json::write_num(resolved.version as f64, &mut out);
        out.push_str(",\"predictions\":[");
        for (i, (&s, row)) in seconds.iter().zip(&features).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"seconds\":");
            json::write_num(s, &mut out);
            out.push_str(",\"node_hours\":");
            json::write_num(s * row[2] / 3600.0, &mut out);
            out.push('}');
        }
        out.push_str("]}");
        Response::json(200, out)
    }

    /// 504 for `stage`, recording the counter and an obs event.
    fn deadline_504(&self, stage: DeadlineStage, d: Deadline) -> Response {
        self.metrics.record_deadline_exceeded(stage);
        obs::event!(
            Level::Warn,
            "http.deadline_exceeded",
            stage = stage.label(),
            budget_ms = d.budget_ms(),
            exceeded_total = self.metrics.deadline_exceeded(stage),
        );
        Response::json(
            504,
            Json::obj([
                ("error", "deadline exceeded".into()),
                ("stage", stage.label().into()),
                ("deadline_ms", Json::Num(d.budget_ms() as f64)),
            ])
            .encode(),
        )
    }

    // `wall_budget` is the request's wall-clock deadline; the body's
    // "budget"/"deadline" fields are the user's node-hour and
    // job-walltime questions. Distinct concepts.
    fn advise(&self, body: &[u8], wall_budget: Option<Deadline>) -> Response {
        // Declare interest to the batcher before parsing: a concurrent
        // sibling mid-parse still counts as a pending submission.
        let _batch_interest = self.enter_batched_route();
        // Fast scan of the canonical body shape: borrowed strings, no
        // Json tree, nothing allocated before the cache probe. Anything
        // unusual falls back to the tree parser, which owns every error
        // message.
        if let Some(f) = std::str::from_utf8(body).ok().and_then(scan_advise) {
            return self.advise_fields(f, wall_budget);
        }
        let tree = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        self.advise_fields(
            AdviseFields {
                model: tree.get("model").and_then(Json::as_str),
                machine: tree.get("machine").and_then(Json::as_str),
                o: tree.get("o").and_then(Json::as_usize),
                v: tree.get("v").and_then(Json::as_usize),
                goal: tree.get("goal").and_then(Json::as_str),
                budget: tree.get("budget").and_then(Json::as_f64),
                deadline: tree.get("deadline").and_then(Json::as_f64),
            },
            wall_budget,
        )
    }

    /// Validation, cache probe, sweep and encode shared by the
    /// fast-scanned and tree-parsed advise paths.
    fn advise_fields(&self, f: AdviseFields<'_>, wall_budget: Option<Deadline>) -> Response {
        let resolved = match self.registry.resolve(f.model, f.machine) {
            Ok(r) => r,
            Err(e) => return error(404, &e),
        };
        let machine_name = f.machine.unwrap_or(&resolved.machine);
        let Some(machine) = by_name(machine_name) else {
            return error(400, &format!("unknown machine {machine_name:?} (aurora|frontier)"));
        };
        let (o, v) = match (f.o, f.v) {
            (Some(o), Some(v)) if o > 0 && v > 0 => (o, v),
            _ => return error(400, "\"o\" and \"v\" must be positive integers"),
        };
        let goal = f.goal.unwrap_or("stq");
        if !matches!(goal, "stq" | "bq" | "pareto") {
            return error(400, &format!("unknown goal {goal:?} (stq|bq|pareto)"));
        }
        let budget = f.budget;
        let deadline = f.deadline;

        // Cache-probe stage: out of budget before even probing? 504.
        if let Some(d) = wall_budget.filter(|d| d.expired()) {
            return self.deadline_504(DeadlineStage::Cache, d);
        }

        // The answer is a pure function of this key: replay it if cached.
        // The probe borrows every string, so a warm hit allocates nothing
        // for the key and shares the cached body by refcount.
        let cache_started = Instant::now();
        let key = AdviseKeyRef {
            model: &resolved.name,
            version: resolved.version,
            machine: machine_name,
            o,
            v,
            goal,
            budget_bits: budget.map(f64::to_bits),
            deadline_bits: deadline.map(f64::to_bits),
        };
        let cached = self.cache.get(&key);
        let hit = cached.is_some();
        self.metrics.record_advise_stage(AdviseStage::Cache, cache_started.elapsed());
        obs::event!(Level::Debug, "advise.cache", hit = hit, o = o, v = v, goal = goal);
        if let Some((cached, rec)) = cached {
            self.metrics.record_cache_hit();
            let mut resp = Response::json(200, cached);
            // A replayed answer is a fresh prediction as far as the quality
            // loop is concerned: each round trip gets its own id, so the
            // cached body stays byte-identical and the id rides a header.
            self.journal_prediction(
                &mut resp,
                &resolved.name,
                resolved.version,
                machine_name,
                o,
                v,
                rec,
            );
            return resp;
        }
        self.metrics.record_cache_miss();

        // Serve-stale-on-overload: while the pool is shedding, an answer
        // computed by a previous model version beats burning a sweep. The
        // replay is labelled `"stale": true` and keeps its original
        // `model_version` so the client can tell what it got.
        if self.metrics.shed_within(STALE_SERVE_WINDOW) {
            if let Some((stale_body, stale_version, stale_rec)) = self.cache.get_stale(&key) {
                self.metrics.record_stale_served();
                obs::event!(
                    Level::Warn,
                    "advise.stale",
                    o = o,
                    v = v,
                    goal = goal,
                    stale_version = stale_version,
                    current_version = resolved.version,
                );
                let labelled: Body = match Json::parse(&stale_body) {
                    Ok(Json::Obj(mut fields)) => {
                        fields.push(("stale".to_string(), Json::Bool(true)));
                        Json::Obj(fields).encode().into()
                    }
                    _ => stale_body.into(),
                };
                let mut resp = Response::json(200, labelled);
                // Journal against the version that computed the answer, so
                // its residuals score the model that actually promised them.
                self.journal_prediction(
                    &mut resp,
                    &resolved.name,
                    stale_version,
                    machine_name,
                    o,
                    v,
                    stale_rec,
                );
                return resp;
            }
        }

        // Sweep stage: the most expensive step gets its own budget gate.
        if let Some(d) = wall_budget.filter(|d| d.expired()) {
            return self.deadline_504(DeadlineStage::Sweep, d);
        }
        if let Some(d) = &wall_budget {
            obs::event!(Level::Debug, "advise.budget", remaining_ms = d.remaining_ms());
        }

        // One sweep answers every question in the request: the flat model
        // predicts the whole candidate matrix in a single batched call and
        // the per-goal answers are reductions over that shared sweep.
        let sweep_started = Instant::now();
        let sweep = {
            let _span = obs::span!(
                Level::Debug,
                "advise.sweep",
                o = o,
                v = v,
                machine = machine_name,
                model = resolved.name.as_str(),
                model_version = resolved.version,
            );
            let advisor = Advisor::new(resolved.flat.as_ref(), machine);
            match self.batcher.get() {
                // The sweep's one batched evaluation rides the
                // micro-batcher like any other, so concurrent advise
                // and predict requests coalesce into shared calls.
                Some(batcher) => advisor.sweep_with(o, v, |x| batcher.predict(&resolved.flat, x)),
                None => advisor.sweep(o, v),
            }
        };
        self.metrics.record_advise_stage(AdviseStage::Sweep, sweep_started.elapsed());

        let encode_started = Instant::now();
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("model", resolved.name.clone().into()),
            ("model_version", Json::Num(resolved.version as f64)),
            ("machine", machine_name.into()),
            ("o", o.into()),
            ("v", v.into()),
        ];
        // The primary recommendation is what the quality loop journals:
        // the goal answer for stq/bq, the frontier's fastest for pareto.
        let primary: Option<Recommendation>;
        match goal {
            "stq" | "bq" => {
                let g = if goal == "stq" { Goal::ShortestTime } else { Goal::Budget };
                fields.push(("goal", g.abbrev().into()));
                let best = sweep.best(g);
                primary = best;
                fields.push(("recommendation", best.map(rec_json).unwrap_or(Json::Null)));
            }
            _ => {
                fields.push(("goal", "pareto".into()));
                let frontier = sweep.pareto_frontier();
                primary = frontier.first().copied();
                fields.push(("frontier", Json::Arr(frontier.into_iter().map(rec_json).collect())));
            }
        }
        if let Some(budget) = budget {
            fields.push((
                "within_budget",
                sweep.fastest_within_budget(budget).map(rec_json).unwrap_or(Json::Null),
            ));
        }
        if let Some(deadline) = deadline {
            fields.push((
                "within_deadline",
                sweep.cheapest_within_deadline(deadline).map(rec_json).unwrap_or(Json::Null),
            ));
        }
        // One rendered slab shared between the cache and this response:
        // the insert is a refcount bump, not a body copy.
        let rendered: Arc<str> = Json::obj(fields).encode().into();
        let rec = primary.map(|r| (r.nodes, r.tile, r.predicted_seconds));
        self.cache.insert(key.to_owned_key(), Arc::clone(&rendered), rec);
        self.metrics.set_cache_entries(self.cache.len());
        self.metrics.record_advise_stage(AdviseStage::Encode, encode_started.elapsed());
        let mut resp = Response::json(200, rendered);
        self.journal_prediction(
            &mut resp,
            &resolved.name,
            resolved.version,
            machine_name,
            o,
            v,
            rec,
        );
        resp
    }

    /// Journal one advise answer's primary recommendation and attach its
    /// `prediction_id` to the response as an `X-Prediction-Id` header.
    /// Answers with no feasible recommendation journal nothing.
    #[allow(clippy::too_many_arguments)]
    fn journal_prediction(
        &self,
        resp: &mut Response,
        model: &str,
        version: u64,
        machine: &str,
        o: usize,
        v: usize,
        rec: Option<CachedRec>,
    ) {
        if let Some((nodes, tile, predicted_seconds)) = rec {
            // Shadow stage: score the primary recommendation with the
            // group's candidate (if one is in Shadow) so `/v1/observe` can
            // later credit the same measurement to both windows. Timed as
            // its own advise stage so the overhead is measurable.
            let shadow_started = Instant::now();
            let shadow = self.lifecycle.shadow_predict(
                model,
                machine,
                &[o as f64, v as f64, nodes as f64, tile as f64],
            );
            self.metrics.record_advise_stage(AdviseStage::Shadow, shadow_started.elapsed());
            let id = self.quality.record_prediction_with_shadow(
                model,
                version,
                machine,
                (o, v, nodes, tile),
                predicted_seconds,
                shadow,
            );
            resp.headers.push(("X-Prediction-Id", id.to_string()));
        }
    }

    /// `POST /v1/observe`: match one measured runtime back to its
    /// journaled prediction. Parsing is deliberately strict — a quality
    /// feed polluted by sloppy clients is worse than none — so unknown
    /// keys, duplicate keys, non-integer ids, and non-positive
    /// measurements are all structured 4xx, and none of them touch the
    /// rolling statistics.
    fn observe(&self, body: &[u8]) -> Response {
        let reject = |metrics: &Metrics, status: u16, msg: &str| {
            metrics.record_quality_observation(false);
            error(status, msg)
        };
        let parsed = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => {
                self.metrics.record_quality_observation(false);
                return resp;
            }
        };
        let Json::Obj(ref obj_fields) = parsed else {
            return reject(&self.metrics, 400, "request body must be a JSON object");
        };
        // `Json::get` returns the first match, so duplicate keys need an
        // explicit scan: two `measured_seconds` values is a client bug to
        // report, not a tiebreak to guess at.
        for (i, (key, _)) in obj_fields.iter().enumerate() {
            if obj_fields.iter().skip(i + 1).any(|(other, _)| other == key) {
                return reject(&self.metrics, 400, &format!("duplicate key {key:?}"));
            }
            if key != "prediction_id" && key != "measured_seconds" {
                return reject(&self.metrics, 400, &format!("unknown key {key:?}"));
            }
        }
        let id = match parsed.get("prediction_id").and_then(Json::as_f64) {
            Some(f) if f.fract() == 0.0 && (1.0..=9_007_199_254_740_992.0).contains(&f) => f as u64,
            _ => {
                return reject(
                    &self.metrics,
                    400,
                    "\"prediction_id\" must be a positive integer (as issued in X-Prediction-Id)",
                )
            }
        };
        let Some(measured) = parsed.get("measured_seconds").and_then(Json::as_f64) else {
            return reject(&self.metrics, 400, "missing \"measured_seconds\" number");
        };
        match self.quality.observe(id, measured) {
            Ok(out) => {
                self.metrics.record_quality_observation(true);
                // Every accepted measurement drives the lifecycle loop:
                // shadow windows fill, retrain triggers fire, and shadow
                // candidates are judged — all before the response leaves.
                self.drive_lifecycle(&out, measured);
                Response::json(
                    200,
                    Json::obj([
                        ("prediction_id", Json::Num(id as f64)),
                        ("model", out.record.model.into()),
                        ("model_version", Json::Num(out.record.version as f64)),
                        ("machine", out.record.machine.into()),
                        ("residual_seconds", Json::Num(out.residual_seconds)),
                        ("ape", Json::Num(out.ape)),
                        ("window_mape", Json::Num(out.window_mape)),
                        ("drift_tripped", Json::Bool(out.drift_tripped)),
                        ("degraded", Json::Bool(out.degraded)),
                    ])
                    .encode(),
                )
            }
            Err(ObserveError::UnknownId) => reject(
                &self.metrics,
                404,
                &format!("prediction_id {id} is unknown (never issued, or evicted)"),
            ),
            Err(ObserveError::Replayed) => {
                reject(&self.metrics, 409, &format!("prediction_id {id} was already observed"))
            }
            Err(ObserveError::InvalidMeasurement) => {
                reject(&self.metrics, 400, "\"measured_seconds\" must be a finite positive number")
            }
        }
    }

    /// `GET /v1/quality`: the quality loop's state in one JSON document —
    /// build identity, journal occupancy, accept/reject counters, and
    /// per-(model, version, machine) rolling statistics.
    fn quality_report(&self) -> Response {
        let (version, git_sha, dirty) = build_info();
        let groups: Vec<Json> = self
            .quality
            .snapshot()
            .into_iter()
            .map(|g| {
                Json::obj([
                    ("model", g.model.into()),
                    ("version", Json::Num(g.version as f64)),
                    ("machine", g.machine.into()),
                    ("observations", Json::Num(g.stats.observations as f64)),
                    ("window", Json::Num(g.stats.window as f64)),
                    ("mape", Json::Num(g.stats.mape)),
                    ("bias_seconds", Json::Num(g.stats.bias_seconds)),
                    ("residual_p50", Json::Num(g.stats.residual_p50)),
                    ("residual_p90", Json::Num(g.stats.residual_p90)),
                    ("residual_p99", Json::Num(g.stats.residual_p99)),
                    ("calibration_ratio", Json::Num(g.stats.calibration_ratio)),
                    ("drift_trips", Json::Num(g.stats.drift_trips as f64)),
                    ("degraded", Json::Bool(g.stats.degraded)),
                ])
            })
            .collect();
        Response::json(
            200,
            Json::obj([
                (
                    "build",
                    Json::obj([
                        ("version", version.into()),
                        ("git_sha", git_sha.into()),
                        ("dirty", dirty.into()),
                    ]),
                ),
                (
                    "journal",
                    Json::obj([
                        ("pending", Json::Num(self.quality.journal_len() as f64)),
                        ("capacity", Json::Num(self.quality.journal_capacity() as f64)),
                    ]),
                ),
                (
                    "observations",
                    Json::obj([
                        ("accepted", Json::Num(self.metrics.quality_accepted() as f64)),
                        ("rejected", Json::Num(self.metrics.quality_rejected() as f64)),
                    ]),
                ),
                ("groups", Json::Arr(groups)),
            ])
            .encode(),
        )
    }

    /// `GET /v1/quality/next_experiments`: configurations the active
    /// learner most wants measured, ranked by GP relative uncertainty.
    fn next_experiments_report(&self) -> Response {
        let plan = self.quality.next_experiments(10);
        let mut fields: Vec<(&'static str, Json)> = vec![("strategy", plan.strategy.into())];
        match plan.group {
            Some((model, version, machine)) => {
                fields.push(("model", model.into()));
                fields.push(("model_version", Json::Num(version as f64)));
                fields.push(("machine", machine.into()));
            }
            None => fields.push(("model", Json::Null)),
        }
        fields.push((
            "configs",
            Json::Arr(
                plan.configs
                    .into_iter()
                    .map(|c| {
                        Json::obj([
                            ("o", c.o.into()),
                            ("v", c.v.into()),
                            ("nodes", c.nodes.into()),
                            ("tile", c.tile.into()),
                            ("score", Json::Num(c.score)),
                        ])
                    })
                    .collect(),
            ),
        ));
        match plan.reason {
            Some(reason) => fields.push(("reason", reason.into())),
            None => fields.push(("reason", Json::Null)),
        }
        Response::json(200, Json::obj(fields).encode())
    }

    /// Feed one accepted observation through the lifecycle loop: credit
    /// the shadow window, fire retrain triggers, and judge the shadow
    /// candidate against the serving window the measurement just updated.
    fn drive_lifecycle(&self, out: &ObserveOutcome, measured_seconds: f64) {
        let model = out.record.model.as_str();
        let machine = out.record.machine.as_str();
        if let Some(shadow) = out.record.shadow_predicted {
            self.lifecycle.record_shadow(model, machine, shadow, measured_seconds);
        }
        // A drift trip always asks for a retrain; a full retained pool asks
        // too, and the hub spaces repeat pool triggers by `pool_trigger`
        // new observations.
        let reason = if out.drift_tripped {
            Some(RetrainReason::DriftTrip)
        } else if out.pool_len >= self.lifecycle.config().pool_trigger {
            Some(RetrainReason::PoolThreshold)
        } else {
            None
        };
        if let Some(reason) = reason {
            self.request_retrain(model, machine, out, reason);
        }
        match self.lifecycle.evaluate_shadow(model, machine, out.window_mape) {
            ShadowVerdict::Promote(ticket) => {
                if let Err(e) = self.execute_promotion(*ticket) {
                    obs::event!(
                        Level::Error,
                        "lifecycle.promote_failed",
                        model = model,
                        machine = machine,
                        error = e.as_str(),
                    );
                }
            }
            ShadowVerdict::Rejected | ShadowVerdict::KeepShadowing => {}
        }
    }

    /// Enqueue a retrain for the group that produced `out`, warm-started
    /// from the serving model. Skipped (not an error) when the registry has
    /// already moved past the version that produced the residuals; refusals
    /// from the hub (in-flight job, frozen group, thin pool, full queue)
    /// are logged and dropped.
    fn request_retrain(
        &self,
        model: &str,
        machine: &str,
        out: &ObserveOutcome,
        reason: RetrainReason,
    ) {
        let Ok(resolved) = self.registry.resolve(Some(model), None) else {
            return;
        };
        if resolved.version != out.record.version || resolved.machine != machine {
            return;
        }
        let rows = self.quality.retained_pool(model, resolved.version, machine);
        let request = RetrainRequest {
            model: model.to_string(),
            machine: machine.to_string(),
            parent_version: resolved.version,
            base: (*resolved.model).clone(),
            rows,
            observations: out.observations,
            reason,
        };
        if let Err(e) = self.lifecycle.request_retrain(request) {
            obs::event!(
                Level::Debug,
                "lifecycle.retrain_refused",
                model = model,
                machine = machine,
                reason = reason.label(),
                error = e.as_str(),
            );
        }
    }

    /// Swap a winning candidate into the registry and run the same
    /// freshness bookkeeping as a hot reload: demote stale cache entries,
    /// reset the staleness clock, and open a clean quality window (which
    /// also un-latches the drift detector) for the new generation.
    fn execute_promotion(&self, ticket: PromotionTicket) -> Result<u64, String> {
        let PromotionTicket {
            model,
            machine,
            candidate,
            lineage,
            shadow_mape,
            serving_mape,
            outcome,
        } = ticket;
        let version = self.registry.promote(&model, candidate)?;
        let demoted = self.cache.demote_model(&model, version);
        self.metrics.set_cache_entries(self.cache.len());
        self.metrics.mark_model_fresh();
        self.quality.register_group(&model, version, &machine);
        // Best-effort durability for file-backed models: write the promoted
        // candidate (lineage included) next to the serving artifact, so an
        // operator can pin or inspect the exact promoted generation.
        if let Some(path) =
            self.registry.list().into_iter().find(|i| i.name == model).and_then(|i| i.path)
        {
            if let Ok(resolved) = self.registry.resolve(Some(&model), None) {
                let sidecar = path.with_extension(format!("v{version}.ccgb"));
                if let Err(e) = save_gb_with_lineage(&sidecar, &resolved.model, &lineage) {
                    obs::event!(
                        Level::Warn,
                        "lifecycle.persist_failed",
                        model = model.as_str(),
                        path = sidecar.display().to_string(),
                        error = e.to_string(),
                    );
                }
            }
        }
        obs::event!(
            Level::Info,
            "lifecycle.promoted",
            model = model.as_str(),
            machine = machine.as_str(),
            version = version,
            outcome = outcome.label(),
            shadow_mape = shadow_mape,
            serving_mape = serving_mape,
            cache_demoted = demoted,
        );
        obs::flush();
        Ok(version)
    }

    /// Resolve the lifecycle group an operator request names: `model` and
    /// `machine` are both optional and default through the registry's
    /// usual resolution rules.
    fn resolve_group(&self, parsed: &Json) -> Result<(String, String), Response> {
        let name = parsed.get("model").and_then(Json::as_str);
        let machine = parsed.get("machine").and_then(Json::as_str);
        let resolved = self.registry.resolve(name, machine).map_err(|e| error(404, &e))?;
        Ok((resolved.name, resolved.machine))
    }

    /// Parse an operator body that may legitimately be empty.
    fn parse_operator_body(body: &[u8]) -> Result<Json, Response> {
        if body.is_empty() {
            return Ok(Json::Obj(Vec::new()));
        }
        parse_body(body)
    }

    /// `GET /v1/lifecycle`: every group's retrain/shadow/promote state,
    /// the trainer queue depth, and the loop's tuning knobs.
    fn lifecycle_report(&self) -> Response {
        let cfg = self.lifecycle.config();
        let groups: Vec<Json> = self
            .lifecycle
            .snapshot()
            .into_iter()
            .map(|g| {
                let lineage = match g.lineage {
                    Some(l) => Json::obj([
                        ("parent_version", Json::Num(l.parent_version as f64)),
                        ("train_rows", Json::Num(l.train_rows as f64)),
                        ("observed_rows", Json::Num(l.observed_rows as f64)),
                        ("fit_duration_ms", Json::Num(l.fit_duration_ms as f64)),
                        ("seed", Json::Num(l.seed as f64)),
                    ]),
                    None => Json::Null,
                };
                Json::obj([
                    ("model", g.model.into()),
                    ("machine", g.machine.into()),
                    ("state", g.state.label().into()),
                    ("frozen", g.frozen.into()),
                    ("retrains", Json::Num(g.retrains as f64)),
                    ("shadow_len", Json::Num(g.shadow_len as f64)),
                    ("shadow_mape", num_or_null(g.shadow_mape)),
                    ("lineage", lineage),
                    ("last_outcome", g.last_outcome.map(Json::from).unwrap_or(Json::Null)),
                ])
            })
            .collect();
        Response::json(
            200,
            Json::obj([
                ("queue_depth", Json::Num(self.lifecycle.queue_depth() as f64)),
                (
                    "config",
                    Json::obj([
                        ("min_shadow", cfg.min_shadow.into()),
                        ("max_shadow", cfg.max_shadow.into()),
                        ("guardband", Json::Num(cfg.guardband)),
                        ("pool_trigger", cfg.pool_trigger.into()),
                        ("extra_stages", cfg.extra_stages.into()),
                    ]),
                ),
                ("groups", Json::Arr(groups)),
            ])
            .encode(),
        )
    }

    /// `POST /v1/lifecycle/promote`: operator override — promote the
    /// current shadow candidate without waiting for the guardband.
    fn lifecycle_promote(&self, body: &[u8]) -> Response {
        let parsed = match Router::parse_operator_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let (model, machine) = match self.resolve_group(&parsed) {
            Ok(g) => g,
            Err(resp) => return resp,
        };
        let ticket = match self.lifecycle.force_promote(&model, &machine) {
            Ok(t) => t,
            Err(e) => return error(409, &e),
        };
        let shadow_mape = ticket.shadow_mape;
        match self.execute_promotion(ticket) {
            Ok(version) => Response::json(
                200,
                Json::obj([
                    ("model", model.into()),
                    ("machine", machine.into()),
                    ("version", Json::Num(version as f64)),
                    ("outcome", "operator".into()),
                    ("shadow_mape", num_or_null(shadow_mape)),
                ])
                .encode(),
            ),
            Err(e) => error(500, &e),
        }
    }

    /// `POST /v1/lifecycle/rollback`: restore the version displaced by the
    /// last promotion. Refused while a retrain is in flight (the candidate
    /// still owns the group) or when no promotion snapshot exists.
    fn lifecycle_rollback(&self, body: &[u8]) -> Response {
        let parsed = match Router::parse_operator_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let (model, machine) = match self.resolve_group(&parsed) {
            Ok(g) => g,
            Err(resp) => return resp,
        };
        if let Some(state @ (LifecycleState::Queued | LifecycleState::Training)) =
            self.lifecycle.group_state(&model, &machine)
        {
            return error(
                409,
                &format!("cannot roll back while a retrain is in flight (state {})", state.label()),
            );
        }
        let version = match self.registry.rollback(&model) {
            Ok(v) => v,
            Err(e) => return error(409, &e),
        };
        // The registry already swapped; a hub refusal here (a retrain that
        // raced in since the check above) only costs the state-machine
        // bookkeeping, never the serving path.
        if let Err(e) = self.lifecycle.mark_rolled_back(&model, &machine) {
            obs::event!(
                Level::Warn,
                "lifecycle.rollback_unrecorded",
                model = model.as_str(),
                machine = machine.as_str(),
                error = e.as_str(),
            );
        }
        let demoted = self.cache.demote_model(&model, version);
        self.metrics.set_cache_entries(self.cache.len());
        self.metrics.mark_model_fresh();
        self.quality.register_group(&model, version, &machine);
        obs::event!(
            Level::Info,
            "lifecycle.rolled_back",
            model = model.as_str(),
            machine = machine.as_str(),
            version = version,
            cache_demoted = demoted,
        );
        obs::flush();
        Response::json(
            200,
            Json::obj([
                ("model", model.into()),
                ("machine", machine.into()),
                ("version", Json::Num(version as f64)),
                ("outcome", "rolled-back".into()),
            ])
            .encode(),
        )
    }

    /// `POST /v1/lifecycle/freeze`: pin a group — no retrain triggers, no
    /// auto-promotion — until unfrozen with `{"frozen": false}`. An
    /// existing shadow keeps scoring so the operator can inspect it.
    fn lifecycle_freeze(&self, body: &[u8]) -> Response {
        let parsed = match Router::parse_operator_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let frozen = match parsed.get("frozen") {
            None => true,
            Some(Json::Bool(b)) => *b,
            Some(_) => return error(400, "\"frozen\" must be a boolean"),
        };
        let (model, machine) = match self.resolve_group(&parsed) {
            Ok(g) => g,
            Err(resp) => return resp,
        };
        match self.lifecycle.set_frozen(&model, &machine, frozen) {
            Ok(was) => Response::json(
                200,
                Json::obj([
                    ("model", model.into()),
                    ("machine", machine.into()),
                    ("frozen", frozen.into()),
                    ("was_frozen", was.into()),
                ])
                .encode(),
            ),
            Err(e) => error(404, &e),
        }
    }
}

fn parse_body(body: &[u8]) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(body).map_err(|_| error(400, "request body is not valid UTF-8"))?;
    Json::parse(text).map_err(|e| error(400, &format!("invalid JSON: {e}")))
}

fn rec_json(r: Recommendation) -> Json {
    Json::obj([
        ("nodes", r.nodes.into()),
        ("tile", r.tile.into()),
        ("predicted_seconds", Json::Num(r.predicted_seconds)),
        ("predicted_node_hours", Json::Num(r.predicted_node_hours)),
    ])
}

fn error(status: u16, message: &str) -> Response {
    Response::json(status, Json::obj([("error", message.into())]).encode())
}

/// The fields an advise request can carry, extracted either by the
/// zero-alloc fast scanner or from a parsed [`Json`] tree. Strings
/// borrow from the request body (fast path) or the tree (fallback).
struct AdviseFields<'a> {
    model: Option<&'a str>,
    machine: Option<&'a str>,
    o: Option<usize>,
    v: Option<usize>,
    goal: Option<&'a str>,
    budget: Option<f64>,
    deadline: Option<f64>,
}

/// [`Json::as_usize`] semantics applied to an already-scanned number.
fn num_as_usize(n: f64) -> Option<usize> {
    (n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64).then_some(n as usize)
}

/// Zero-alloc scan of the canonical advise body: a flat object whose
/// keys are a subset of `{o, v, goal, budget, deadline, model, machine}`
/// with escape-free string values. `None` ("fall back to the tree
/// parser") for anything else — unknown keys, duplicates, escapes,
/// wrongly-typed values — so every error path is decided by the parser
/// whose messages the API contract pins.
fn scan_advise(text: &str) -> Option<AdviseFields<'_>> {
    let mut sc = Scanner::new(text);
    sc.skip_ws();
    if !sc.eat(b'{') {
        return None;
    }
    let mut f = AdviseFields {
        model: None,
        machine: None,
        o: None,
        v: None,
        goal: None,
        budget: None,
        deadline: None,
    };
    let mut seen = 0u8;
    sc.skip_ws();
    if sc.eat(b'}') {
        return sc.at_end().then_some(f);
    }
    loop {
        sc.skip_ws();
        let key = sc.string()?;
        sc.skip_ws();
        if !sc.eat(b':') {
            return None;
        }
        sc.skip_ws();
        let bit: u8 = match key {
            "o" => 1,
            "v" => 2,
            "goal" => 4,
            "budget" => 8,
            "deadline" => 16,
            "model" => 32,
            "machine" => 64,
            _ => return None,
        };
        if seen & bit != 0 {
            // Duplicate keys: first-match semantics live in the tree parser.
            return None;
        }
        seen |= bit;
        match key {
            // A number that fails the `as_usize` contract leaves the
            // field `None`, exactly like the tree path's
            // `get("o").and_then(Json::as_usize)`.
            "o" => f.o = num_as_usize(sc.number()?),
            "v" => f.v = num_as_usize(sc.number()?),
            "goal" => f.goal = Some(sc.string()?),
            "budget" => f.budget = Some(sc.number()?),
            "deadline" => f.deadline = Some(sc.number()?),
            "model" => f.model = Some(sc.string()?),
            "machine" => f.machine = Some(sc.string()?),
            _ => unreachable!("key already matched above"),
        }
        sc.skip_ws();
        if sc.eat(b',') {
            continue;
        }
        if sc.eat(b'}') {
            break;
        }
        return None;
    }
    sc.at_end().then_some(f)
}

/// Zero-tree scan of the canonical predict body:
/// `{"rows": [{o, v, nodes, tile}, ...]}` with optional escape-free
/// `"model"`/`"machine"` strings. Returns the validated feature rows,
/// or `None` to fall back to the tree parser (which owns every error
/// message, including the rows-shape 400s).
type ScannedPredict<'a> = (Vec<[f64; 4]>, Option<&'a str>, Option<&'a str>);

fn scan_predict(text: &str) -> Option<ScannedPredict<'_>> {
    let mut sc = Scanner::new(text);
    sc.skip_ws();
    if !sc.eat(b'{') {
        return None;
    }
    let mut rows = None;
    let mut model = None;
    let mut machine = None;
    let mut seen = 0u8;
    sc.skip_ws();
    if sc.eat(b'}') {
        return None;
    }
    loop {
        sc.skip_ws();
        let key = sc.string()?;
        sc.skip_ws();
        if !sc.eat(b':') {
            return None;
        }
        sc.skip_ws();
        let bit: u8 = match key {
            "rows" => 1,
            "model" => 2,
            "machine" => 4,
            _ => return None,
        };
        if seen & bit != 0 {
            return None;
        }
        seen |= bit;
        match key {
            "rows" => rows = Some(scan_rows(&mut sc)?),
            "model" => model = Some(sc.string()?),
            "machine" => machine = Some(sc.string()?),
            _ => unreachable!("key already matched above"),
        }
        sc.skip_ws();
        if sc.eat(b',') {
            continue;
        }
        if sc.eat(b'}') {
            break;
        }
        return None;
    }
    if !sc.at_end() {
        return None;
    }
    let rows = rows?;
    if rows.is_empty() || rows.len() > MAX_PREDICT_ROWS {
        return None;
    }
    Some((rows, model, machine))
}

fn scan_rows(sc: &mut Scanner<'_>) -> Option<Vec<[f64; 4]>> {
    if !sc.eat(b'[') {
        return None;
    }
    let mut rows = Vec::new();
    sc.skip_ws();
    if sc.eat(b']') {
        return Some(rows);
    }
    loop {
        sc.skip_ws();
        rows.push(scan_row(sc)?);
        if rows.len() > MAX_PREDICT_ROWS {
            return None;
        }
        sc.skip_ws();
        if sc.eat(b',') {
            continue;
        }
        if sc.eat(b']') {
            return Some(rows);
        }
        return None;
    }
}

/// One feature object with exactly the keys `o`, `v`, `nodes`, `tile`
/// (any order, each once) and positive finite number values — the shape
/// the tree path accepts without a 400. Anything else falls back.
fn scan_row(sc: &mut Scanner<'_>) -> Option<[f64; 4]> {
    if !sc.eat(b'{') {
        return None;
    }
    let mut row = [0.0f64; 4];
    let mut seen = 0u8;
    sc.skip_ws();
    if sc.eat(b'}') {
        return None;
    }
    loop {
        sc.skip_ws();
        let key = sc.string()?;
        sc.skip_ws();
        if !sc.eat(b':') {
            return None;
        }
        sc.skip_ws();
        let idx = match key {
            "o" => 0,
            "v" => 1,
            "nodes" => 2,
            "tile" => 3,
            _ => return None,
        };
        if seen & (1 << idx) != 0 {
            return None;
        }
        seen |= 1 << idx;
        let n = sc.number()?;
        if n <= 0.0 {
            return None;
        }
        row[idx] = n;
        sc.skip_ws();
        if sc.eat(b',') {
            continue;
        }
        if sc.eat(b'}') {
            break;
        }
        return None;
    }
    (seen == 0b1111).then_some(row)
}

/// NaN-safe JSON number: JSON has no NaN literal, so a statistic that is
/// not yet available serializes as `null`.
fn num_or_null(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Null
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chemcost_ml::flat::QUANT_REL_TOL;
    use chemcost_ml::gradient_boosting::GradientBoosting;
    use chemcost_ml::Regressor;
    use chemcost_sim::datagen::generate_dataset_sized;

    /// A router over one small model trained on simulated aurora data.
    fn test_router() -> Router {
        let machine = by_name("aurora").unwrap();
        let samples = generate_dataset_sized(&machine, 80, 7);
        let x = Matrix::from_fn(samples.len(), 4, |i, j| match j {
            0 => samples[i].o as f64,
            1 => samples[i].v as f64,
            2 => samples[i].nodes as f64,
            _ => samples[i].tile as f64,
        });
        let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
        let mut gb = GradientBoosting::new(20, 3, 0.2);
        gb.seed = 3;
        gb.fit(&x, &y).unwrap();
        let registry = Arc::new(ModelRegistry::new());
        registry.insert("gb", "aurora", gb);
        Router::new(registry)
    }

    fn post(router: &Router, path: &str, body: &str) -> Response {
        router.handle(&Request::new("POST", path, body.as_bytes()))
    }

    fn json_of(resp: &Response) -> Json {
        Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    #[test]
    fn healthz_and_models() {
        let router = test_router();
        let resp = router.handle(&Request::new("GET", "/healthz", b""));
        assert_eq!(resp.status, 200);
        let resp = router.handle(&Request::new("GET", "/v1/models", b""));
        let v = json_of(&resp);
        let models = v.get("models").and_then(Json::as_array).unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].get("name").and_then(Json::as_str), Some("gb"));
    }

    #[test]
    fn predict_batch_matches_direct_model_call() {
        let router = test_router();
        let resp = post(
            &router,
            "/v1/predict",
            r#"{"rows": [{"o": 120, "v": 900, "nodes": 64, "tile": 24},
                         {"o": 60, "v": 500, "nodes": 16, "tile": 30}]}"#,
        );
        assert_eq!(resp.status, 200, "{:?}", String::from_utf8_lossy(&resp.body));
        let v = json_of(&resp);
        let preds = v.get("predictions").and_then(Json::as_array).unwrap();
        assert_eq!(preds.len(), 2);

        // The served path runs the quantized flat traversal: within
        // QUANT_REL_TOL of the recursive model (routing is exact on these
        // integer features; only leaf rounding differs).
        let model = router.registry().resolve(Some("gb"), None).unwrap().model;
        let x = Matrix::from_fn(1, 4, |_, j| [120.0, 900.0, 64.0, 24.0][j]);
        let expect = model.predict(&x)[0];
        let got = preds[0].get("seconds").and_then(Json::as_f64).unwrap();
        assert!((got - expect).abs() <= QUANT_REL_TOL * (1.0 + expect.abs()));
        let nh = preds[0].get("node_hours").and_then(Json::as_f64).unwrap();
        assert!((nh - got * 64.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn predict_fast_scan_and_tree_path_agree_byte_for_byte() {
        let router = test_router();
        // Canonical body: taken by the fast scanner.
        let fast = post(
            &router,
            "/v1/predict",
            r#"{"rows":[{"o":120,"v":900,"nodes":64,"tile":24},{"o":60,"v":500,"nodes":16,"tile":30}]}"#,
        );
        // Same request with an extra (ignored) key in a row: the scanner
        // rejects it, so this one rides the tree parser.
        let slow = post(
            &router,
            "/v1/predict",
            r#"{"rows":[{"o":120,"v":900,"nodes":64,"tile":24,"note":1},{"o":60,"v":500,"nodes":16,"tile":30}]}"#,
        );
        assert_eq!(fast.status, 200);
        assert_eq!(slow.status, 200);
        assert_eq!(fast.body.as_bytes(), slow.body.as_bytes());
    }

    #[test]
    fn advise_fast_scan_and_tree_path_agree() {
        let router = test_router();
        let fast = post(&router, "/v1/advise", r#"{"o":120,"v":900,"goal":"bq"}"#);
        // An ignored extra key forces the tree parser; the answer (modulo
        // the per-round-trip prediction id header) must match the cached
        // body the fast path produced.
        let slow = post(&router, "/v1/advise", r#"{"o":120,"v":900,"goal":"bq","x":1}"#);
        assert_eq!(fast.status, 200);
        assert_eq!(slow.status, 200);
        assert_eq!(fast.body.as_bytes(), slow.body.as_bytes());
    }

    #[test]
    fn fast_scanners_reject_noncanonical_shapes() {
        // Every one of these must fall back (None) so the tree parser
        // decides the semantics.
        for body in [
            "{\"o\": 1, \"v\": 2, \"goal\": \"st\\u0071\"}", // escaped string
            r#"{"o": 1, "o": 2, "v": 3}"#,                   // duplicate key
            r#"{"o": 1, "v": 2, "extra": true}"#,            // unknown key
            r#"{"o": "1", "v": 2}"#,                         // wrong type
            r#"[1, 2]"#,                                     // not an object
            r#"{"o": 1, "v": 2} trailing"#,                  // trailing garbage
            r#"{"o": 1e999, "v": 2}"#,                       // non-finite number
        ] {
            assert!(scan_advise(body).is_none(), "{body}");
        }
        for body in [
            r#"{"rows": []}"#,                                               // empty rows
            r#"{"rows": [{"o":1,"v":2,"nodes":3}]}"#,                        // missing tile
            r#"{"rows": [{"o":1,"v":2,"nodes":3,"tile":0}]}"#,               // non-positive
            r#"{"rows": [{"o":1,"v":2,"nodes":3,"tile":4,"tile":5}]}"#,      // duplicate
            r#"{"rows": [{"o":1,"v":2,"nodes":3,"tile":4}], "goal":"stq"}"#, // unknown key
        ] {
            assert!(scan_predict(body).is_none(), "{body}");
        }
    }

    #[test]
    fn fast_scan_extracts_same_fields_as_tree() {
        let body = r#" {"model":"gb","machine":"aurora","o":116,"v":840,"goal":"pareto","budget":12.5,"deadline":3600} "#;
        let f = scan_advise(body).expect("canonical body should fast-scan");
        let tree = Json::parse(body).unwrap();
        assert_eq!(f.model, tree.get("model").and_then(Json::as_str));
        assert_eq!(f.machine, tree.get("machine").and_then(Json::as_str));
        assert_eq!(f.o, tree.get("o").and_then(Json::as_usize));
        assert_eq!(f.v, tree.get("v").and_then(Json::as_usize));
        assert_eq!(f.goal, tree.get("goal").and_then(Json::as_str));
        assert_eq!(f.budget, tree.get("budget").and_then(Json::as_f64));
        assert_eq!(f.deadline, tree.get("deadline").and_then(Json::as_f64));

        // Fractional o: key present but not a usize — same as the tree's
        // as_usize returning None.
        let f = scan_advise(r#"{"o": 1.5, "v": 2}"#).unwrap();
        assert_eq!(f.o, None);
        assert_eq!(f.v, Some(2));
    }

    #[test]
    fn advise_matches_offline_advisor() {
        let router = test_router();
        let resp = post(&router, "/v1/advise", r#"{"o": 120, "v": 900, "goal": "bq"}"#);
        assert_eq!(resp.status, 200, "{:?}", String::from_utf8_lossy(&resp.body));
        let v = json_of(&resp);
        assert_eq!(v.get("goal").and_then(Json::as_str), Some("BQ"));

        let model = router.registry().resolve(Some("gb"), None).unwrap().model;
        let advisor = Advisor::new(model.as_ref(), by_name("aurora").unwrap());
        let expect = advisor.answer_bq(120, 900).unwrap();
        let rec = v.get("recommendation").unwrap();
        assert_eq!(rec.get("nodes").and_then(Json::as_usize), Some(expect.nodes));
        assert_eq!(rec.get("tile").and_then(Json::as_usize), Some(expect.tile));
    }

    #[test]
    fn advise_pareto_returns_frontier() {
        let router = test_router();
        let resp = post(&router, "/v1/advise", r#"{"o": 120, "v": 900, "goal": "pareto"}"#);
        let v = json_of(&resp);
        let frontier = v.get("frontier").and_then(Json::as_array).unwrap();
        assert!(!frontier.is_empty());
        // Frontier is seconds-ascending, node-hours-descending.
        let secs: Vec<f64> = frontier
            .iter()
            .map(|r| r.get("predicted_seconds").unwrap().as_f64().unwrap())
            .collect();
        assert!(secs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn malformed_and_invalid_requests_get_400() {
        let router = test_router();
        assert_eq!(post(&router, "/v1/predict", "{not json").status, 400);
        assert_eq!(post(&router, "/v1/predict", r#"{"rows": []}"#).status, 400);
        assert_eq!(
            post(&router, "/v1/predict", r#"{"rows": [{"o": 1, "v": 2, "nodes": 0, "tile": 4}]}"#)
                .status,
            400
        );
        assert_eq!(post(&router, "/v1/advise", r#"{"o": 120}"#).status, 400);
        assert_eq!(
            post(&router, "/v1/advise", r#"{"o": 120, "v": 900, "goal": "??"}"#).status,
            400
        );
        assert_eq!(
            post(&router, "/v1/advise", r#"{"o": 120, "v": 900, "machine": "summit"}"#).status,
            400
        );
    }

    #[test]
    fn unknown_routes_404_and_bad_methods_405() {
        let router = test_router();
        assert_eq!(router.handle(&Request::new("GET", "/nope", b"")).status, 404);
        assert_eq!(post(&router, "/v1/nope", "{}").status, 404);
        assert_eq!(router.handle(&Request::new("DELETE", "/healthz", b"")).status, 405);
    }

    #[test]
    fn unknown_model_404s() {
        let router = test_router();
        let resp = post(
            &router,
            "/v1/predict",
            r#"{"model": "ghost", "rows": [{"o":1,"v":2,"nodes":4,"tile":8}]}"#,
        );
        assert_eq!(resp.status, 404);
        assert_eq!(post(&router, "/v1/models/ghost/reload", "").status, 404);
    }

    #[test]
    fn metrics_reflect_traffic() {
        let router = test_router();
        router.handle(&Request::new("GET", "/healthz", b""));
        post(&router, "/v1/predict", "{bad");
        let resp = router.handle(&Request::new("GET", "/metrics", b""));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body.into_bytes()).unwrap();
        assert!(text.contains("chemcost_requests_total{route=\"healthz\"} 1"), "{text}");
        assert!(text.contains("chemcost_request_errors_total{route=\"predict\"} 1"), "{text}");
    }

    #[test]
    fn shutdown_sets_flag() {
        let router = test_router();
        assert!(!router.shutdown_requested());
        assert_eq!(post(&router, "/v1/shutdown", "").status, 200);
        assert!(router.shutdown_requested());
    }

    /// Scrape `/metrics` and pull one integer-valued series out of it.
    fn scrape(router: &Router, series: &str) -> u64 {
        let resp = router.handle(&Request::new("GET", "/metrics", b""));
        let text = String::from_utf8(resp.body.into_bytes()).unwrap();
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{series} ")))
            .unwrap_or_else(|| panic!("series {series} missing from:\n{text}"))
            .parse()
            .unwrap()
    }

    #[test]
    fn advise_cache_warm_answers_identical_to_cold() {
        let router = test_router();
        let body = r#"{"o": 120, "v": 900, "goal": "stq", "budget": 2.5, "deadline": 40.0}"#;
        let cold = post(&router, "/v1/advise", body);
        assert_eq!(cold.status, 200);
        assert_eq!(scrape(&router, "chemcost_advise_cache_misses_total"), 1);
        assert_eq!(scrape(&router, "chemcost_advise_cache_hits_total"), 0);
        assert_eq!(scrape(&router, "chemcost_advise_cache_entries"), 1);

        let warm = post(&router, "/v1/advise", body);
        assert_eq!(warm.status, 200);
        assert_eq!(warm.body, cold.body, "warm answer must be byte-identical to cold");
        assert_eq!(scrape(&router, "chemcost_advise_cache_hits_total"), 1);
        assert_eq!(scrape(&router, "chemcost_advise_cache_misses_total"), 1);

        // A different question is its own cache line.
        let other = post(&router, "/v1/advise", r#"{"o": 120, "v": 900, "goal": "bq"}"#);
        assert_eq!(other.status, 200);
        assert_eq!(scrape(&router, "chemcost_advise_cache_misses_total"), 2);
        assert_eq!(scrape(&router, "chemcost_advise_cache_entries"), 2);

        // Invalid requests never touch the cache.
        assert_eq!(
            post(&router, "/v1/advise", r#"{"o": 120, "v": 900, "goal": "??"}"#).status,
            400
        );
        assert_eq!(scrape(&router, "chemcost_advise_cache_misses_total"), 2);
    }

    /// A file-backed router (reload has something to re-read) plus the
    /// training matrix/labels so tests can write new model generations.
    fn file_backed_router(tag: &str) -> (Router, std::path::PathBuf, Matrix, Vec<f64>) {
        let machine = by_name("aurora").unwrap();
        let samples = generate_dataset_sized(&machine, 80, 7);
        let x = Matrix::from_fn(samples.len(), 4, |i, j| match j {
            0 => samples[i].o as f64,
            1 => samples[i].v as f64,
            2 => samples[i].nodes as f64,
            _ => samples[i].tile as f64,
        });
        let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
        let mut gb = GradientBoosting::new(20, 3, 0.2);
        gb.seed = 3;
        gb.fit(&x, &y).unwrap();
        let dir = std::env::temp_dir().join(format!("chemcost-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ccgb");
        chemcost_ml::persist::save_gb(&path, &gb).unwrap();

        let registry = Arc::new(ModelRegistry::new());
        registry.load_file("gb", "aurora", &path).unwrap();
        (Router::new(registry), path, x, y)
    }

    #[test]
    fn reload_demotes_stale_cache_entries() {
        let (router, path, x, y) = file_backed_router("cache");

        let body = r#"{"o": 120, "v": 900, "goal": "stq"}"#;
        let v1 = post(&router, "/v1/advise", body);
        assert_eq!(v1.status, 200);
        assert_eq!(scrape(&router, "chemcost_advise_cache_entries"), 1);

        // Swap a differently-seeded model onto disk and hot-reload.
        let mut gb2 = GradientBoosting::new(20, 3, 0.2);
        gb2.seed = 11;
        gb2.fit(&x, &y).unwrap();
        chemcost_ml::persist::save_gb(&path, &gb2).unwrap();
        assert_eq!(post(&router, "/v1/models/gb/reload", "").status, 200);

        // The old answer is demoted, not dropped: it stays cached as an
        // overload fallback but is invisible to the normal probe.
        assert_eq!(scrape(&router, "chemcost_advise_cache_entries"), 1);

        // The next advise is a miss against the new version, not a stale hit.
        let hits_before = scrape(&router, "chemcost_advise_cache_hits_total");
        let v2 = post(&router, "/v1/advise", body);
        assert_eq!(v2.status, 200);
        assert_eq!(scrape(&router, "chemcost_advise_cache_hits_total"), hits_before);
        assert_eq!(scrape(&router, "chemcost_advise_cache_misses_total"), 2);
        let parsed = json_of(&v2);
        assert_eq!(parsed.get("model_version").and_then(Json::as_usize), Some(2));
        assert!(parsed.get("stale").is_none(), "fresh answer must not be stale-labelled");

        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn overloaded_advise_serves_labelled_stale_answer() {
        let (router, path, x, y) = file_backed_router("stale");

        let body = r#"{"o": 120, "v": 900, "goal": "stq"}"#;
        assert_eq!(post(&router, "/v1/advise", body).status, 200);

        // Reload to v2 so the cached v1 answer demotes to stale.
        let mut gb2 = GradientBoosting::new(20, 3, 0.2);
        gb2.seed = 11;
        gb2.fit(&x, &y).unwrap();
        chemcost_ml::persist::save_gb(&path, &gb2).unwrap();
        assert_eq!(post(&router, "/v1/models/gb/reload", "").status, 200);

        // Simulate overload: the pool just shed a connection.
        router.metrics().record_shed();
        let resp = post(&router, "/v1/advise", body);
        assert_eq!(resp.status, 200);
        let parsed = json_of(&resp);
        assert_eq!(parsed.get("stale").and_then(Json::as_bool), Some(true));
        // The stale replay keeps the version it was computed against.
        assert_eq!(parsed.get("model_version").and_then(Json::as_usize), Some(1));
        assert_eq!(scrape(&router, "chemcost_advise_stale_served_total"), 1);

        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn failed_reload_keeps_serving_and_reports_last_good() {
        let (router, path, _x, _y) = file_backed_router("swr");
        std::fs::write(&path, b"garbage, not a model").unwrap();

        let resp = post(&router, "/v1/models/gb/reload", "");
        assert_eq!(resp.status, 500);
        let parsed = json_of(&resp);
        assert!(parsed.get("error").is_some());
        assert_eq!(parsed.get("serving_model").and_then(Json::as_str), Some("gb"));
        assert_eq!(parsed.get("serving_version").and_then(Json::as_usize), Some(1));

        // The service still answers from the last-good model...
        let ok = post(&router, "/v1/advise", r#"{"o": 120, "v": 900, "goal": "stq"}"#);
        assert_eq!(ok.status, 200);
        assert_eq!(json_of(&ok).get("model_version").and_then(Json::as_usize), Some(1));
        // ...and the staleness instruments are live.
        assert_eq!(scrape(&router, "chemcost_model_reload_failures_total"), 1);
        assert!(router.metrics().model_staleness_seconds() >= 0.0);

        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    fn with_deadline(path: &str, body: &str, deadline: &str) -> Request {
        let mut req = Request::new("POST", path, body.as_bytes());
        req.headers.insert("x-deadline-ms".to_string(), deadline.to_string());
        req
    }

    #[test]
    fn bad_deadline_headers_get_structured_400() {
        let router = test_router();
        let body = r#"{"o": 120, "v": 900, "goal": "stq"}"#;
        for bad in ["0", "-5", "banana", "18446744073709551616", "500, 9000", ""] {
            let resp = router.handle(&with_deadline("/v1/advise", body, bad));
            assert_eq!(resp.status, 400, "deadline {bad:?}");
            assert!(json_of(&resp).get("error").is_some(), "deadline {bad:?}");
        }
        // A generous valid deadline passes through untouched.
        let resp = router.handle(&with_deadline("/v1/advise", body, "60000"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn queue_expired_budget_is_504_at_dequeue() {
        let router = test_router();
        let req = with_deadline("/v1/advise", r#"{"o": 120, "v": 900, "goal": "stq"}"#, "10");
        // The request "arrived" 50 ms ago with a 10 ms budget: it spent
        // its whole deadline in the queue.
        let arrived = Instant::now() - Duration::from_millis(50);
        let resp = router.handle_from(&req, arrived);
        assert_eq!(resp.status, 504);
        let parsed = json_of(&resp);
        assert_eq!(parsed.get("error").and_then(Json::as_str), Some("deadline exceeded"));
        assert_eq!(parsed.get("stage").and_then(Json::as_str), Some("queue"));
        assert_eq!(parsed.get("deadline_ms").and_then(Json::as_usize), Some(10));
        assert_eq!(scrape(&router, "chemcost_deadline_exceeded_total{stage=\"queue\"}"), 1);
    }

    #[test]
    fn health_and_slo_routes_answer_disabled_before_install() {
        let router = test_router();
        let resp = router.handle(&Request::new("GET", "/v1/health", b""));
        assert_eq!(resp.status, 200);
        assert_eq!(json_of(&resp).get("status").and_then(Json::as_str), Some("disabled"));
        let resp = router.handle(&Request::new("GET", "/debug/slo", b""));
        assert_eq!(resp.status, 200);
        assert_eq!(json_of(&resp).get("status").and_then(Json::as_str), Some("disabled"));
        // The route is tracked under its own label.
        assert_eq!(scrape(&router, "chemcost_requests_total{route=\"health\"}"), 1);
    }

    #[test]
    fn health_route_serves_the_installed_hub() {
        let router = test_router();
        let sampler = crate::health_bridge::MetricsSampler::new(router.metrics());
        let config = chemcost_health::HealthConfig {
            slos: crate::health_bridge::builtin_slos(),
            ..Default::default()
        };
        let hub = Arc::new(chemcost_health::HealthHub::new(Arc::clone(sampler.schema()), &config));
        router.install_health(Arc::clone(&hub));
        let resp = router.handle(&Request::new("GET", "/v1/health", b""));
        assert_eq!(resp.status, 200, "no scrapes yet: nothing can be firing");
        let v = json_of(&resp);
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        let slos = v.get("slos").and_then(Json::as_array).unwrap();
        assert_eq!(slos.len(), crate::health_bridge::builtin_slos().len());
        let resp = router.handle(&Request::new("GET", "/debug/slo", b""));
        let v = json_of(&resp);
        assert!(v.get("ring").is_some());
        assert_eq!(v.get("slos").and_then(Json::as_array).unwrap().len(), slos.len());
    }

    #[test]
    fn debug_requests_passes_query_filters_through() {
        let router = test_router();
        let resp =
            router.handle(&Request::new("GET", "/debug/requests?since_us=12345&route=advise", b""));
        assert_eq!(resp.status, 200);
        let v = json_of(&resp);
        assert_eq!(v.get("since_us").and_then(Json::as_usize), Some(12345));
        assert_eq!(v.get("recent").and_then(Json::as_array).map(|a| a.len()), Some(0));
        // Unparsable since_us degrades to 0 rather than erroring.
        let resp = router.handle(&Request::new("GET", "/debug/requests?since_us=banana", b""));
        assert_eq!(resp.status, 200);
        assert_eq!(json_of(&resp).get("since_us").and_then(Json::as_usize), Some(0));
    }

    #[test]
    fn default_deadline_applies_when_header_absent() {
        let router = test_router().with_default_deadline_ms(Some(10));
        let req = Request::new("POST", "/v1/advise", br#"{"o": 120, "v": 900, "goal": "stq"}"#);
        let arrived = Instant::now() - Duration::from_millis(50);
        let resp = router.handle_from(&req, arrived);
        assert_eq!(resp.status, 504);
        // An explicit header beats the default.
        let generous =
            with_deadline("/v1/advise", r#"{"o": 120, "v": 900, "goal": "stq"}"#, "60000");
        assert_eq!(router.handle_from(&generous, arrived).status, 200);
    }
}
