//! Model-quality observability: the advise→observe→retrain loop.
//!
//! The advisor's value rests on its predictions staying accurate as
//! users run real configurations, so the serving layer closes the loop
//! the paper's active-learning campaign runs offline:
//!
//! 1. every `/v1/advise` answer is assigned a `prediction_id` and its
//!    primary recommendation journaled to a bounded in-memory ring
//!    (spilled to the obs sinks as `quality.prediction` debug events);
//! 2. `POST /v1/observe {prediction_id, measured_seconds}` matches a
//!    measured wall time back to its journal entry and scores it — one
//!    `quality.residual` event per accepted report, carrying the
//!    originating advise request's trace id;
//! 3. per `(model, version, machine)` serving group, a sliding window
//!    of residuals ([`chemcost_ml::monitor::RollingQuality`]) feeds the
//!    `/metrics` quality gauges and `GET /v1/quality`;
//! 4. a Page–Hinkley detector over the absolute-percentage-error stream
//!    flags the group `degraded` on trip (a `quality.drift` event +
//!    `chemcost_drift_trips_total`), and the accumulated observation
//!    pool is handed to `chemcost-active`'s uncertainty-sampling
//!    strategy to rank which configurations to measure next
//!    (`GET /v1/quality/next_experiments`).
//!
//! A [`chemcost_ml::gaussian_process::GaussianProcess`] is refit
//! periodically on the observation pool so each journaled prediction
//! carries a 1-σ uncertainty; the fraction of residuals inside that ±σ
//! band is the calibration ratio on `/metrics`.

use crate::metrics::{Metrics, QualityStats};
use chemcost_linalg::Matrix;
use chemcost_ml::gaussian_process::GaussianProcess;
use chemcost_ml::monitor::{PageHinkley, RollingQuality};
use chemcost_ml::{Regressor, UncertaintyRegressor};
use chemcost_obs::{self as obs, Level};
use chemcost_sim::machine::by_name;
use chemcost_sim::simulate::fits_in_memory;
use chemcost_sim::Problem;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Journal capacity: predictions awaiting ground truth. When full, the
/// oldest pending prediction is evicted (a later report for it answers
/// 404, like any unknown id).
pub const JOURNAL_CAPACITY: usize = 4096;
/// Consumed-id memory: how many already-observed ids are remembered for
/// replay rejection (409) before the oldest are forgotten.
const CONSUMED_CAPACITY: usize = 8192;
/// Sliding residual window per serving group.
const WINDOW: usize = 128;
/// Labelled observation pool per group (feeds the GP and the
/// next-experiments ranking).
const POOL_CAPACITY: usize = 512;
/// Refit the per-group uncertainty GP every this many accepted
/// observations (an O(n³) fit — not a per-request cost).
const GP_REFIT_EVERY: u64 = 16;
/// Most recent pool rows used for GP fits and experiment ranking.
const GP_MAX_FIT: usize = 96;
/// Minimum accepted observations before experiment ranking is offered.
pub const MIN_OBSERVATIONS_FOR_EXPERIMENTS: usize = 8;
/// Candidate-grid cap for one `next_experiments` ranking pass.
const MAX_CANDIDATES: usize = 2000;
/// Serving groups tracked at once (registry entries × surviving
/// versions); oldest groups are dropped past this.
const MAX_GROUPS: usize = 64;

/// One journaled `/v1/advise` answer awaiting its measured runtime.
#[derive(Debug, Clone)]
pub struct PredictionRecord {
    /// The id handed to the client (`prediction_id` in the response).
    pub id: u64,
    /// Serving model name.
    pub model: String,
    /// Serving model version.
    pub version: u64,
    /// Machine the recommendation targets.
    pub machine: String,
    /// Occupied orbitals of the question.
    pub o: usize,
    /// Virtual orbitals of the question.
    pub v: usize,
    /// Recommended node count.
    pub nodes: usize,
    /// Recommended tile size.
    pub tile: usize,
    /// The runtime the model promised, in seconds.
    pub predicted_seconds: f64,
    /// GP 1-σ uncertainty at the recommended configuration, once the
    /// group's GP has enough observations to be fit.
    pub gp_uncertainty: Option<f64>,
    /// The shadow candidate's prediction for the same configuration, when
    /// the group had a candidate in shadow at journal time. Scored against
    /// the measured runtime on `/v1/observe` without ever being served.
    pub shadow_predicted: Option<f64>,
    /// Trace id of the advise request that produced this prediction.
    pub advise_trace: Option<String>,
}

/// Why a ground-truth report was turned away (the route maps these to
/// structured 4xx responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserveError {
    /// The id was never issued, or its journal entry has been evicted.
    UnknownId,
    /// The id was already consumed by an earlier report (replay).
    Replayed,
    /// `measured_seconds` was not a finite positive number. The routes
    /// reject this on the wire; the hub re-checks so bad input can
    /// never skew the rolling stats.
    InvalidMeasurement,
}

/// The result of one accepted ground-truth report.
#[derive(Debug, Clone)]
pub struct ObserveOutcome {
    /// The journaled prediction the report was matched to.
    pub record: PredictionRecord,
    /// `predicted − measured`, in seconds.
    pub residual_seconds: f64,
    /// Absolute percentage error of this single observation.
    pub ape: f64,
    /// The group's windowed MAPE after folding this observation in.
    pub window_mape: f64,
    /// Did this observation trip the Page–Hinkley drift detector?
    pub drift_tripped: bool,
    /// Is the group flagged degraded (now or from an earlier trip)?
    pub degraded: bool,
    /// Retained-pool fill for the group after folding this observation in.
    pub pool_len: usize,
    /// Total accepted observations for the group (monotonic).
    pub observations: u64,
}

/// One `(model, version, machine)` group's public quality snapshot.
#[derive(Debug, Clone)]
pub struct GroupSnapshot {
    /// Model name.
    pub model: String,
    /// Model version.
    pub version: u64,
    /// Machine name.
    pub machine: String,
    /// Rolling stats as exported on `/metrics`.
    pub stats: QualityStats,
}

/// One recommended measurement from the active-learning ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Occupied orbitals.
    pub o: usize,
    /// Virtual orbitals.
    pub v: usize,
    /// Node count.
    pub nodes: usize,
    /// Tile size.
    pub tile: usize,
    /// Acquisition score (GP relative uncertainty; higher = run first).
    pub score: f64,
}

/// The ranked next-experiments answer for `GET /v1/quality/next_experiments`.
#[derive(Debug, Clone)]
pub struct NextExperiments {
    /// The serving group the ranking targets (degraded groups first,
    /// then the group with the most observations); `None` when no group
    /// has enough observations.
    pub group: Option<(String, u64, String)>,
    /// Acquisition strategy abbreviation (always "US").
    pub strategy: &'static str,
    /// Ranked configurations, best first. Empty when ranking is not
    /// possible yet — see `reason`.
    pub configs: Vec<ExperimentConfig>,
    /// Why `configs` is empty, when it is.
    pub reason: Option<String>,
}

struct Group {
    model: String,
    version: u64,
    machine: String,
    window: RollingQuality,
    detector: PageHinkley,
    degraded: bool,
    drift_trips: u64,
    /// Labelled observations `([o, v, nodes, tile], measured_seconds)`.
    pool: VecDeque<([f64; 4], f64)>,
    /// Observations silently dropped from the full pool — exported so the
    /// retrainer's data loss is visible, not silent.
    pool_evictions: u64,
    gp: Option<GaussianProcess>,
    accepted_since_fit: u64,
}

impl Group {
    fn new(model: &str, version: u64, machine: &str) -> Group {
        Group {
            model: model.to_string(),
            version,
            machine: machine.to_string(),
            window: RollingQuality::new(WINDOW),
            detector: PageHinkley::for_ape_stream(),
            degraded: false,
            drift_trips: 0,
            pool: VecDeque::new(),
            pool_evictions: 0,
            gp: None,
            accepted_since_fit: 0,
        }
    }

    fn stats(&self) -> QualityStats {
        QualityStats {
            observations: self.window.observations(),
            window: self.window.len() as u64,
            mape: self.window.mape(),
            bias_seconds: self.window.bias_seconds(),
            residual_p50: self.window.residual_quantile(0.5),
            residual_p90: self.window.residual_quantile(0.9),
            residual_p99: self.window.residual_quantile(0.99),
            calibration_ratio: self.window.calibration_ratio(),
            drift_trips: self.drift_trips,
            degraded: self.degraded,
            pool_size: self.pool.len() as u64,
            pool_evictions: self.pool_evictions,
        }
    }

    /// σ at one configuration from the group's GP, when fit.
    fn sigma_at(&self, x: [f64; 4]) -> Option<f64> {
        let gp = self.gp.as_ref()?;
        let (_, std) = gp.predict_with_std(&Matrix::from_rows(&[&x]));
        std.first().copied().filter(|s| s.is_finite())
    }

    /// Refit the uncertainty GP on the most recent pool rows. Failures
    /// (degenerate pools) just leave the previous GP in place.
    fn refit_gp(&mut self) {
        let n = self.pool.len().min(GP_MAX_FIT);
        if n < 4 {
            return;
        }
        let rows: Vec<&([f64; 4], f64)> = self.pool.iter().rev().take(n).collect();
        let x = Matrix::from_fn(n, 4, |i, j| rows[i].0[j]);
        let y: Vec<f64> = rows.iter().map(|(_, m)| *m).collect();
        let mut gp = GaussianProcess::tuned();
        if gp.fit(&x, &y).is_ok() {
            self.gp = Some(gp);
        }
        self.accepted_since_fit = 0;
    }
}

#[derive(Default)]
struct Inner {
    journal: HashMap<u64, PredictionRecord>,
    /// Issue order of journal ids, for FIFO eviction. May hold ids
    /// already consumed (removed from `journal`); eviction skips them.
    order: VecDeque<u64>,
    consumed: HashSet<u64>,
    consumed_order: VecDeque<u64>,
    groups: Vec<Group>,
}

impl Inner {
    fn group_mut(&mut self, model: &str, version: u64, machine: &str) -> &mut Group {
        if let Some(i) = self
            .groups
            .iter()
            .position(|g| g.model == model && g.version == version && g.machine == machine)
        {
            return &mut self.groups[i];
        }
        if self.groups.len() == MAX_GROUPS {
            self.groups.remove(0);
        }
        self.groups.push(Group::new(model, version, machine));
        self.groups.last_mut().expect("just pushed")
    }
}

/// The serving daemon's quality tracker. One per [`crate::Router`];
/// thread-safe.
pub struct QualityHub {
    next_id: AtomicU64,
    metrics: Arc<Metrics>,
    inner: Mutex<Inner>,
}

impl QualityHub {
    /// A hub pushing its per-group gauges into `metrics`.
    pub fn new(metrics: Arc<Metrics>) -> QualityHub {
        QualityHub { next_id: AtomicU64::new(1), metrics, inner: Mutex::new(Inner::default()) }
    }

    /// Journal capacity (pending predictions).
    pub fn journal_capacity(&self) -> usize {
        JOURNAL_CAPACITY
    }

    /// Predictions currently awaiting ground truth.
    pub fn journal_len(&self) -> usize {
        self.inner.lock().journal.len()
    }

    /// Ensure a `(model, version, machine)` group exists and its gauges
    /// are pre-registered on `/metrics`. The router calls this for every
    /// registry entry at startup and again after each successful reload,
    /// so the quality series appear on the very first scrape.
    pub fn register_group(&self, model: &str, version: u64, machine: &str) {
        let mut inner = self.inner.lock();
        let stats = inner.group_mut(model, version, machine).stats();
        drop(inner);
        self.metrics.set_model_quality(model, version, machine, stats);
    }

    /// Journal one advise answer; returns the `prediction_id` to hand
    /// to the client. `config` is `(o, v, nodes, tile)`.
    pub fn record_prediction(
        &self,
        model: &str,
        version: u64,
        machine: &str,
        config: (usize, usize, usize, usize),
        predicted_seconds: f64,
    ) -> u64 {
        self.record_prediction_with_shadow(model, version, machine, config, predicted_seconds, None)
    }

    /// [`QualityHub::record_prediction`] plus the shadow candidate's
    /// prediction for the same configuration, so `/v1/observe` can score
    /// the candidate's window alongside the serving model's.
    pub fn record_prediction_with_shadow(
        &self,
        model: &str,
        version: u64,
        machine: &str,
        config: (usize, usize, usize, usize),
        predicted_seconds: f64,
        shadow_predicted: Option<f64>,
    ) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (o, v, nodes, tile) = config;
        let mut inner = self.inner.lock();
        let sigma = inner.group_mut(model, version, machine).sigma_at([
            o as f64,
            v as f64,
            nodes as f64,
            tile as f64,
        ]);
        let record = PredictionRecord {
            id,
            model: model.to_string(),
            version,
            machine: machine.to_string(),
            o,
            v,
            nodes,
            tile,
            predicted_seconds,
            gp_uncertainty: sigma,
            shadow_predicted,
            advise_trace: obs::current_trace().map(|t| t.to_string()),
        };
        // FIFO-evict once the journal is full; consumed ids linger in
        // `order` without journal entries, so skip them.
        while inner.journal.len() >= JOURNAL_CAPACITY {
            match inner.order.pop_front() {
                Some(old) => {
                    inner.journal.remove(&old);
                }
                None => break,
            }
        }
        inner.order.push_back(id);
        inner.journal.insert(id, record);
        drop(inner);
        obs::event!(
            Level::Debug,
            "quality.prediction",
            prediction_id = id,
            model = model,
            version = version,
            machine = machine,
            o = o,
            v = v,
            nodes = nodes,
            tile = tile,
            predicted_seconds = predicted_seconds,
            gp_uncertainty = sigma.unwrap_or(f64::NAN),
        );
        id
    }

    /// Score one measured runtime against its journaled prediction.
    ///
    /// Validation happens **before** any state changes: a rejected
    /// report can never skew the rolling stats. Accepted reports update
    /// the group's window, observation pool, GP refit counter, and the
    /// drift detector, then push the new stats to `/metrics` and emit a
    /// `quality.residual` event (plus `quality.drift` on a trip).
    pub fn observe(
        &self,
        prediction_id: u64,
        measured_seconds: f64,
    ) -> Result<ObserveOutcome, ObserveError> {
        if !measured_seconds.is_finite() || measured_seconds <= 0.0 {
            return Err(ObserveError::InvalidMeasurement);
        }
        let mut inner = self.inner.lock();
        if inner.consumed.contains(&prediction_id) {
            return Err(ObserveError::Replayed);
        }
        let Some(record) = inner.journal.remove(&prediction_id) else {
            return Err(ObserveError::UnknownId);
        };
        inner.consumed.insert(prediction_id);
        inner.consumed_order.push_back(prediction_id);
        while inner.consumed_order.len() > CONSUMED_CAPACITY {
            if let Some(old) = inner.consumed_order.pop_front() {
                inner.consumed.remove(&old);
            }
        }

        let residual_seconds = record.predicted_seconds - measured_seconds;
        let ape = residual_seconds.abs() / measured_seconds;
        let group = inner.group_mut(&record.model, record.version, &record.machine);
        group.window.push(record.predicted_seconds, measured_seconds, record.gp_uncertainty);
        if group.pool.len() == POOL_CAPACITY {
            group.pool.pop_front();
            group.pool_evictions += 1;
        }
        group.pool.push_back((
            [record.o as f64, record.v as f64, record.nodes as f64, record.tile as f64],
            measured_seconds,
        ));
        group.accepted_since_fit += 1;
        if group.gp.is_none() || group.accepted_since_fit >= GP_REFIT_EVERY {
            group.refit_gp();
        }
        let drift_tripped = group.detector.update(ape);
        if drift_tripped {
            group.drift_trips += 1;
            group.degraded = true;
            // Re-arm so a persisting shift is re-confirmed from scratch
            // rather than re-reported on every subsequent observation.
            group.detector.reset();
        }
        let stats = group.stats();
        let degraded = group.degraded;
        let window_mape = stats.mape;
        let pool_len = stats.pool_size as usize;
        let observations = stats.observations;
        drop(inner);

        self.metrics.set_model_quality(&record.model, record.version, &record.machine, stats);
        obs::event!(
            Level::Info,
            "quality.residual",
            prediction_id = prediction_id,
            model = record.model.as_str(),
            version = record.version,
            machine = record.machine.as_str(),
            o = record.o,
            v = record.v,
            nodes = record.nodes,
            tile = record.tile,
            predicted_seconds = record.predicted_seconds,
            measured_seconds = measured_seconds,
            residual_seconds = residual_seconds,
            ape = ape,
            window_mape = window_mape,
            advise_trace = record.advise_trace.clone().unwrap_or_default(),
        );
        if drift_tripped {
            obs::event!(
                Level::Warn,
                "quality.drift",
                model = record.model.as_str(),
                version = record.version,
                machine = record.machine.as_str(),
                window_mape = window_mape,
                observations = stats.observations,
            );
        }
        Ok(ObserveOutcome {
            record,
            residual_seconds,
            ape,
            window_mape,
            drift_tripped,
            degraded,
            pool_len,
            observations,
        })
    }

    /// Snapshot of one group's retained observations
    /// (`([o, v, nodes, tile], measured_seconds)`), oldest first — the
    /// training set the lifecycle trainer consumes. Empty when the group
    /// is unknown.
    pub fn retained_pool(&self, model: &str, version: u64, machine: &str) -> Vec<([f64; 4], f64)> {
        let inner = self.inner.lock();
        inner
            .groups
            .iter()
            .find(|g| g.model == model && g.version == version && g.machine == machine)
            .map(|g| g.pool.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Every tracked group's current stats, for `GET /v1/quality`.
    /// Degraded groups sort first, then by observation count.
    pub fn snapshot(&self) -> Vec<GroupSnapshot> {
        let inner = self.inner.lock();
        let mut out: Vec<GroupSnapshot> = inner
            .groups
            .iter()
            .map(|g| GroupSnapshot {
                model: g.model.clone(),
                version: g.version,
                machine: g.machine.clone(),
                stats: g.stats(),
            })
            .collect();
        out.sort_by(|a, b| {
            (b.stats.degraded, b.stats.observations, &a.model)
                .partial_cmp(&(a.stats.degraded, a.stats.observations, &b.model))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Rank the next configurations to measure with `chemcost-active`'s
    /// uncertainty-sampling strategy, trained on the chosen group's
    /// observation pool. The candidate grid is the group's observed
    /// `(O, V)` problems crossed with the full in-grid node/tile
    /// candidates, memory-feasibility-filtered, minus configurations
    /// already measured.
    pub fn next_experiments(&self, k: usize) -> NextExperiments {
        let inner = self.inner.lock();
        // Degraded groups first (they are the ones needing retraining
        // data), then the best-observed group.
        let group = inner
            .groups
            .iter()
            .max_by_key(|g| (g.degraded, g.pool.len(), std::cmp::Reverse(g.version)));
        let Some(group) = group else {
            return NextExperiments {
                group: None,
                strategy: "US",
                configs: Vec::new(),
                reason: Some("no serving group has received observations yet".to_string()),
            };
        };
        let chosen = (group.model.clone(), group.version, group.machine.clone());
        if group.pool.len() < MIN_OBSERVATIONS_FOR_EXPERIMENTS {
            return NextExperiments {
                group: Some(chosen),
                strategy: "US",
                configs: Vec::new(),
                reason: Some(format!(
                    "only {} observations; need at least {MIN_OBSERVATIONS_FOR_EXPERIMENTS}",
                    group.pool.len()
                )),
            };
        }
        let Some(machine) = by_name(&group.machine) else {
            return NextExperiments {
                group: Some(chosen),
                strategy: "US",
                configs: Vec::new(),
                reason: Some(format!("unknown machine {:?}", group.machine)),
            };
        };

        // Labelled set: the most recent pool rows (bounds the GP fit).
        let rows: Vec<&([f64; 4], f64)> = group.pool.iter().rev().take(GP_MAX_FIT).collect();
        let x_labeled = Matrix::from_fn(rows.len(), 4, |i, j| rows[i].0[j]);
        let y_labeled: Vec<f64> = rows.iter().map(|(_, m)| *m).collect();
        let seed = group.window.observations();

        // Candidate grid: observed problems × full node/tile grid,
        // memory-feasible, minus already-measured configurations.
        let mut problems: Vec<(usize, usize)> =
            group.pool.iter().map(|(f, _)| (f[0] as usize, f[1] as usize)).collect();
        problems.sort_unstable();
        problems.dedup();
        let measured: HashSet<[u64; 4]> = group
            .pool
            .iter()
            .map(|(f, _)| [f[0] as u64, f[1] as u64, f[2] as u64, f[3] as u64])
            .collect();
        let mut candidates: Vec<(usize, usize, usize, usize)> = Vec::new();
        for &(o, v) in &problems {
            let problem = Problem::new(o, v);
            for &nodes in &chemcost_sim::datagen::node_candidates() {
                if !fits_in_memory(&problem, nodes, &machine) {
                    continue;
                }
                for &tile in &chemcost_sim::datagen::tile_candidates() {
                    if measured.contains(&[o as u64, v as u64, nodes as u64, tile as u64]) {
                        continue;
                    }
                    candidates.push((o, v, nodes, tile));
                }
            }
        }
        drop(inner);
        if candidates.is_empty() {
            return NextExperiments {
                group: Some(chosen),
                strategy: "US",
                configs: Vec::new(),
                reason: Some("every in-grid feasible configuration is already measured".into()),
            };
        }
        // Stride-thin an oversized grid so the GP scoring pass stays
        // bounded; log nothing — the ranking is a sample either way.
        if candidates.len() > MAX_CANDIDATES {
            let stride = candidates.len().div_ceil(MAX_CANDIDATES);
            candidates = candidates.into_iter().step_by(stride).collect();
        }
        let x_pool = Matrix::from_fn(candidates.len(), 4, |i, j| match j {
            0 => candidates[i].0 as f64,
            1 => candidates[i].1 as f64,
            2 => candidates[i].2 as f64,
            _ => candidates[i].3 as f64,
        });
        match chemcost_active::rank_next_experiments(&x_labeled, &y_labeled, &x_pool, k, seed) {
            Ok(ranked) => NextExperiments {
                group: Some(chosen),
                strategy: "US",
                configs: ranked
                    .into_iter()
                    .map(|r| {
                        let (o, v, nodes, tile) = candidates[r.index];
                        ExperimentConfig { o, v, nodes, tile, score: r.score }
                    })
                    .collect(),
                reason: None,
            },
            Err(e) => NextExperiments {
                group: Some(chosen),
                strategy: "US",
                configs: Vec::new(),
                reason: Some(format!("ranking model failed to fit: {e}")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> QualityHub {
        QualityHub::new(Arc::new(Metrics::new()))
    }

    fn journal_one(h: &QualityHub, predicted: f64) -> u64 {
        h.record_prediction("gb", 1, "aurora", (99, 718, 120, 90), predicted)
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let h = hub();
        let a = journal_one(&h, 100.0);
        let b = journal_one(&h, 100.0);
        assert!(b > a);
        assert_eq!(h.journal_len(), 2);
    }

    #[test]
    fn observe_scores_matches_and_updates_metrics() {
        let metrics = Arc::new(Metrics::new());
        let h = QualityHub::new(metrics.clone());
        let id = h.record_prediction("gb", 1, "aurora", (99, 718, 120, 90), 110.0);
        let out = h.observe(id, 100.0).unwrap();
        assert_eq!(out.record.id, id);
        assert!((out.residual_seconds - 10.0).abs() < 1e-12);
        assert!((out.ape - 0.1).abs() < 1e-12);
        assert!((out.window_mape - 0.1).abs() < 1e-12);
        assert!(!out.drift_tripped);
        assert!(!out.degraded);
        let entries = metrics.quality_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].model, "gb");
        assert!((entries[0].stats.mape - 0.1).abs() < 1e-12);
        assert_eq!(entries[0].stats.observations, 1);
        assert_eq!(h.journal_len(), 0, "observed entries leave the journal");
    }

    #[test]
    fn unknown_replayed_and_invalid_reports_are_rejected_without_skew() {
        let h = hub();
        assert_eq!(h.observe(999, 1.0).unwrap_err(), ObserveError::UnknownId);
        let id = journal_one(&h, 50.0);
        assert_eq!(h.observe(id, f64::NAN).unwrap_err(), ObserveError::InvalidMeasurement);
        assert_eq!(h.observe(id, -3.0).unwrap_err(), ObserveError::InvalidMeasurement);
        assert_eq!(h.observe(id, 0.0).unwrap_err(), ObserveError::InvalidMeasurement);
        // Rejections must not have consumed the id or touched the stats.
        let out = h.observe(id, 50.0).unwrap();
        assert_eq!(out.record.id, id);
        assert_eq!(h.snapshot()[0].stats.observations, 1);
        // A second report for the same id is a replay.
        assert_eq!(h.observe(id, 50.0).unwrap_err(), ObserveError::Replayed);
        assert_eq!(h.snapshot()[0].stats.observations, 1, "replay must not skew stats");
    }

    #[test]
    fn journal_evicts_oldest_when_full() {
        let h = hub();
        let first = journal_one(&h, 1.0);
        for _ in 0..JOURNAL_CAPACITY {
            journal_one(&h, 1.0);
        }
        assert_eq!(h.journal_len(), JOURNAL_CAPACITY);
        assert_eq!(h.observe(first, 1.0).unwrap_err(), ObserveError::UnknownId);
    }

    #[test]
    fn drift_detector_trips_on_sustained_error_shift_and_flags_degraded() {
        let h = hub();
        // Healthy phase: ~5% error.
        for i in 0..40 {
            let id = journal_one(&h, 100.0);
            let measured = 100.0 / (1.0 + 0.05 * if i % 2 == 0 { 1.0 } else { -1.0 });
            let out = h.observe(id, measured).unwrap();
            assert!(!out.drift_tripped, "false trip at healthy observation {i}");
        }
        // The world shifts: real runtimes jump 60% above predictions.
        let mut tripped = false;
        for _ in 0..50 {
            let id = journal_one(&h, 100.0);
            let out = h.observe(id, 160.0).unwrap();
            if out.drift_tripped {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "a 60% runtime shift must trip the detector within 50 observations");
        let snap = h.snapshot();
        assert!(snap[0].stats.degraded);
        assert_eq!(snap[0].stats.drift_trips, 1);
    }

    #[test]
    fn predictions_carry_gp_uncertainty_once_the_pool_warms_up() {
        let h = hub();
        for i in 0..(GP_REFIT_EVERY as usize + 4) {
            let id = h.record_prediction(
                "gb",
                1,
                "aurora",
                (99, 718, 20 + 10 * (i % 6), 40 + 10 * (i % 5)),
                100.0 + i as f64,
            );
            h.observe(id, 95.0 + i as f64).unwrap();
        }
        let id = journal_one(&h, 120.0);
        let out = h.observe(id, 118.0).unwrap();
        assert!(
            out.record.gp_uncertainty.is_some(),
            "after {} observations the GP must be fit",
            GP_REFIT_EVERY + 4
        );
        assert!(out.record.gp_uncertainty.unwrap() >= 0.0);
        // Calibration ratio becomes defined once σ-carrying residuals land.
        assert!(!h.snapshot()[0].stats.calibration_ratio.is_nan());
    }

    #[test]
    fn pool_evictions_are_counted_and_retained_pool_snapshots() {
        let h = hub();
        for i in 0..POOL_CAPACITY + 3 {
            let id = h.record_prediction("gb", 1, "aurora", (99, 718, 120, 90), 100.0 + i as f64);
            let out = h.observe(id, 100.0 + i as f64).unwrap();
            assert_eq!(out.observations, i as u64 + 1);
            assert_eq!(out.pool_len, (i + 1).min(POOL_CAPACITY));
        }
        let snap = &h.snapshot()[0];
        assert_eq!(snap.stats.pool_size, POOL_CAPACITY as u64);
        assert_eq!(snap.stats.pool_evictions, 3, "silent drops must be counted");
        let pool = h.retained_pool("gb", 1, "aurora");
        assert_eq!(pool.len(), POOL_CAPACITY);
        // Oldest first; the three oldest measurements were evicted.
        assert!((pool[0].1 - 103.0).abs() < 1e-12);
        assert!((pool[POOL_CAPACITY - 1].1 - (100.0 + (POOL_CAPACITY + 2) as f64)).abs() < 1e-12);
        assert!(h.retained_pool("gb", 2, "aurora").is_empty());
        assert!(h.retained_pool("other", 1, "aurora").is_empty());
    }

    #[test]
    fn shadow_predictions_round_trip_through_observe() {
        let h = hub();
        let id = h.record_prediction_with_shadow(
            "gb",
            1,
            "aurora",
            (99, 718, 120, 90),
            110.0,
            Some(101.5),
        );
        let out = h.observe(id, 100.0).unwrap();
        assert_eq!(out.record.shadow_predicted, Some(101.5));
        // The plain journal path leaves the shadow slot empty.
        let id = journal_one(&h, 110.0);
        let out = h.observe(id, 100.0).unwrap();
        assert_eq!(out.record.shadow_predicted, None);
    }

    #[test]
    fn next_experiments_requires_observations_then_ranks_in_grid() {
        let h = hub();
        let none = h.next_experiments(5);
        assert!(none.group.is_none());
        assert!(none.configs.is_empty());
        assert!(none.reason.is_some());

        // Two observed problems, several configs each.
        for i in 0..12 {
            let id = h.record_prediction(
                "gb",
                1,
                "aurora",
                (
                    if i % 2 == 0 { 99 } else { 134 },
                    if i % 2 == 0 { 718 } else { 951 },
                    [20, 30, 50, 80, 120, 150][i % 6],
                    40 + 10 * (i % 4),
                ),
                500.0 + 20.0 * i as f64,
            );
            h.observe(id, 480.0 + 21.0 * i as f64).unwrap();
        }
        let plan = h.next_experiments(10);
        assert_eq!(plan.group.as_ref().map(|(m, ..)| m.as_str()), Some("gb"));
        assert_eq!(plan.strategy, "US");
        assert!(plan.reason.is_none(), "{:?}", plan.reason);
        assert!(!plan.configs.is_empty());
        assert!(plan.configs.len() <= 10);
        let nodes_grid = chemcost_sim::datagen::node_candidates();
        let tile_grid = chemcost_sim::datagen::tile_candidates();
        let mut seen = HashSet::new();
        for c in &plan.configs {
            assert!([(99, 718), (134, 951)].contains(&(c.o, c.v)), "{c:?}");
            assert!(nodes_grid.contains(&c.nodes), "{c:?} nodes not in grid");
            assert!(tile_grid.contains(&c.tile), "{c:?} tile not in grid");
            assert!(c.score.is_finite() && c.score >= 0.0);
            assert!(seen.insert((c.o, c.v, c.nodes, c.tile)), "duplicate {c:?}");
        }
        // Ranked best-first.
        for pair in plan.configs.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }
}
