//! The event-driven serving data plane.
//!
//! One thread runs a level-triggered epoll loop (via the vendored
//! [`polling`] crate) that owns every socket: it accepts connections,
//! reads request bytes into per-connection buffers, parses them
//! incrementally ([`crate::http::parse_request`]), and writes encoded
//! responses back out — all nonblocking. Compute never happens on this
//! thread: each parsed request is dispatched to the bounded worker pool,
//! and the finished response comes back over a channel (plus an eventfd
//! [`Waker`] nudge). HTTP/1.1 keep-alive and pipelining are native:
//! a connection can have many requests in flight, and responses are
//! reordered by sequence number so the wire order always matches the
//! request order.
//!
//! The backpressure ladder, from the outside in (see `docs/SERVING.md`):
//!
//! 1. **Connection budget** — beyond `--max-conns` open connections the
//!    accept handler answers `503` and closes (`chemcost_requests_shed_total`).
//! 2. **Compute queue** — a parsed request that cannot enter the worker
//!    pool's bounded queue gets a per-request `503`; the connection
//!    itself stays open (keep-alive preserved).
//! 3. **Parser limits** — oversized header lines (`431`) and bodies
//!    (`413`) are rejected mid-stream, before buffering the rest.
//! 4. **Write high-water mark** — a connection whose response backlog
//!    passes [`WRITE_HIGH_WATER`] stops being read until it drains, so
//!    a slow consumer cannot balloon server memory.
//!
//! Graceful drain: when `POST /v1/shutdown` is handled, the loop stops
//! accepting (the listener is closed), stops reading every connection,
//! forces `Connection: close` on every response still in flight, closes
//! idle keep-alive connections immediately, and exits once the last
//! response byte is flushed.
//!
//! The PR-4 chaos plane maps onto the loop without new semantics:
//! `saturate` sheds at accept, `slow-io` stalls the worker before
//! compute, `drop-conn` tears the response mid-status-line, and
//! `truncate-body` gives the connection a read budget after which the
//! client appears to die mid-upload.
//!
//! Every request additionally carries a [`TimelineBuilder`] (PR 8):
//! the loop stamps it at first byte, parse completion, worker dequeue,
//! handler return, reorder release, and last flushed byte, then folds
//! the completed timeline into the
//! `chemcost_request_stage_duration_seconds` histograms, the router's
//! [`crate::timeline::FlightRecorder`] (`GET /debug/requests`), and a
//! `request.timeline` obs event. The loop itself reports health series:
//! iteration duration, events per epoll wake, and gauges for
//! connections whose reads are paused by backpressure or whose writes
//! are stalled on the socket.

use crate::fault::{FaultKind, FaultPlane};
use crate::http::{encode_response_into, parse_request, HttpError, Request, Response};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::pool::ThreadPool;
use crate::routes::Router;
use crate::timeline::TimelineBuilder;
use polling::{Event, Interest, Poller, Waker};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fs::File;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default bound on simultaneously open client connections
/// (`--max-conns`). Accepts beyond it are shed with `503`.
pub const DEFAULT_MAX_CONNS: usize = 1024;

/// Pause reading a connection whose unsent response bytes exceed this.
const WRITE_HIGH_WATER: usize = 256 * 1024;

/// Most requests one connection may have in flight (dispatched, not yet
/// responded). Bounds the reorder buffer under aggressive pipelining;
/// further pipelined bytes simply wait in the read buffer.
const MAX_PIPELINE: usize = 64;

/// Bytes read from a socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Poll timeout, which doubles as the idle-connection sweep cadence.
const SWEEP_INTERVAL: Duration = Duration::from_millis(250);

/// Poller key of the listening socket.
const KEY_LISTENER: usize = usize::MAX - 1;
/// Poller key of the cross-thread waker.
const KEY_WAKER: usize = usize::MAX;

/// Event-loop tuning, from the `Server` builder / CLI flags.
#[derive(Debug, Clone, Copy)]
pub struct EventLoopConfig {
    /// Open-connection budget; accepts beyond it are shed with `503`.
    pub max_conns: usize,
    /// Idle keep-alive connections are closed after this long.
    pub idle_timeout: Duration,
}

impl Default for EventLoopConfig {
    fn default() -> EventLoopConfig {
        EventLoopConfig { max_conns: DEFAULT_MAX_CONNS, idle_timeout: Duration::from_secs(5) }
    }
}

/// A finished request riding back from a worker to the loop.
struct Done {
    token: usize,
    seq: u64,
    response: Response,
    keep_alive: bool,
    /// The request's timeline, stamped by the worker; `None` for
    /// loop-synthesized responses (parse errors, queue-full sheds).
    timeline: Option<Box<TimelineBuilder>>,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes received, not yet parsed into a complete request.
    read_buf: Vec<u8>,
    /// Encoded responses not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Sequence number for the next parsed request.
    next_seq: u64,
    /// Sequence number of the next response to encode — responses
    /// finishing out of order wait in `done` until their turn.
    next_flush: u64,
    done: BTreeMap<u64, (Response, bool, Option<Box<TimelineBuilder>>)>,
    /// Requests dispatched to workers, response not yet applied.
    in_flight: usize,
    /// Requests parsed on this connection (for the keep-alive metric).
    requests: u64,
    /// When the first byte of the *next* request landed in `read_buf`.
    /// Taken at parse completion; the `read` timeline stage starts here.
    req_first_byte: Option<Instant>,
    /// Total response bytes ever appended to `write_buf`.
    bytes_enqueued: u64,
    /// Total response bytes the socket has accepted.
    bytes_flushed: u64,
    /// Timelines of encoded responses, keyed by the `bytes_enqueued`
    /// offset at which each response ends — once `bytes_flushed` passes
    /// that offset, the response's last byte is on the wire and the
    /// timeline completes.
    pending_timelines: VecDeque<(u64, Box<TimelineBuilder>)>,
    /// Mirror of the `chemcost_connections_read_paused` gauge.
    read_paused: bool,
    /// Mirror of the `chemcost_connections_write_stalled` gauge.
    write_stalled: bool,
    /// Stop reading; close once flushed and nothing is in flight.
    closing: bool,
    /// Chaos `drop-conn`: close as soon as the (torn) buffer is flushed,
    /// discarding any responses still in flight.
    abort: bool,
    /// The peer half-closed its sending side (read returned 0).
    peer_closed: bool,
    /// Chaos `truncate-body`: remaining bytes we pretend the client
    /// still managed to send before dying.
    read_budget: Option<usize>,
    /// What the poller currently watches for this socket.
    registered: Option<Interest>,
    /// Last moment this connection made progress (for the idle sweep).
    idle_since: Instant,
}

impl Conn {
    fn new(stream: TcpStream, read_budget: Option<usize>) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            next_seq: 0,
            next_flush: 0,
            done: BTreeMap::new(),
            in_flight: 0,
            requests: 0,
            req_first_byte: None,
            bytes_enqueued: 0,
            bytes_flushed: 0,
            pending_timelines: VecDeque::new(),
            read_paused: false,
            write_stalled: false,
            closing: false,
            abort: false,
            peer_closed: false,
            read_budget,
            registered: None,
            idle_since: Instant::now(),
        }
    }

    /// Append response bytes to the wire buffer. Every append MUST go
    /// through here: `bytes_enqueued` offsets key `pending_timelines`,
    /// so a raw `write_buf` push would desync write-stage attribution.
    fn enqueue_bytes(&mut self, bytes: &[u8]) {
        self.write_buf.extend_from_slice(bytes);
        self.bytes_enqueued += bytes.len() as u64;
    }

    /// Serialize a response straight into the wire buffer — no
    /// intermediate allocation; the buffer's capacity is reused across
    /// every response on this connection. Same `bytes_enqueued`
    /// bookkeeping contract as [`Conn::enqueue_bytes`].
    fn enqueue_response(&mut self, response: &Response, keep_alive: bool) {
        let before = self.write_buf.len();
        encode_response_into(response, keep_alive, &mut self.write_buf);
        self.bytes_enqueued += (self.write_buf.len() - before) as u64;
    }

    /// Should this connection be torn down right now?
    fn finished(&self) -> bool {
        if self.abort {
            return self.write_buf.is_empty();
        }
        if self.closing {
            return self.write_buf.is_empty() && self.in_flight == 0 && self.done.is_empty();
        }
        // Peer gone, nothing left to answer: nothing to wait for.
        self.peer_closed && self.write_buf.is_empty() && self.in_flight == 0 && self.done.is_empty()
    }

    /// The poller interest this connection's state calls for. `None`
    /// means the socket needs no watching (e.g. only waiting on worker
    /// completions) and should be deregistered.
    fn desired_interest(&self) -> Option<Interest> {
        let want_read = !self.closing
            && !self.abort
            && !self.peer_closed
            && self.in_flight < MAX_PIPELINE
            && self.write_buf.len() < WRITE_HIGH_WATER;
        let want_write = !self.write_buf.is_empty();
        match (want_read, want_write) {
            (true, true) => Some(Interest::Both),
            (true, false) => Some(Interest::Read),
            (false, true) => Some(Interest::Write),
            (false, false) => None,
        }
    }
}

/// Everything the loop thread needs in one place.
struct Loop<'a> {
    poller: Poller,
    waker: Arc<Waker>,
    listener: Option<TcpListener>,
    router: Router,
    metrics: Arc<Metrics>,
    pool: &'a ThreadPool,
    faults: Option<Arc<FaultPlane>>,
    config: EventLoopConfig,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    done_tx: Sender<Done>,
    done_rx: Receiver<Done>,
    /// Shutdown observed: listener closed, all responses forced
    /// `Connection: close`, loop exits when the last conn drains.
    draining: bool,
    /// One fd held in reserve so fd exhaustion (`EMFILE`/`ENFILE`) can
    /// be recovered: release it, accept the pending connection, close
    /// it immediately, reclaim it. See [`Loop::accept_failed`].
    fd_reserve: Option<File>,
}

/// Run the event loop until graceful drain completes. Owns the
/// listener; the worker `pool` and the router's installed [`Batcher`]
/// stay alive for the caller to join/shut down afterwards.
pub(crate) fn run(
    listener: TcpListener,
    router: Router,
    pool: &ThreadPool,
    faults: Option<Arc<FaultPlane>>,
    config: EventLoopConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), KEY_LISTENER, Interest::Read)?;
    let waker = Arc::new(Waker::new(&poller, KEY_WAKER)?);
    let metrics = Arc::clone(router.metrics());
    let (done_tx, done_rx) = channel();
    let mut lp = Loop {
        poller,
        waker,
        listener: Some(listener),
        router,
        metrics,
        pool,
        faults,
        config,
        conns: HashMap::new(),
        next_token: 0,
        done_tx,
        done_rx,
        draining: false,
        fd_reserve: File::open("/dev/null").ok(),
    };
    let mut events: Vec<Event> = Vec::new();

    loop {
        events.clear();
        lp.poller.wait(&mut events, Some(SWEEP_INTERVAL))?;
        // Measured from after the wait: the histogram is time the loop
        // spends *working* per wake, not time parked in epoll.
        let iter_start = Instant::now();
        for ev in &events {
            match ev.key {
                KEY_WAKER => lp.waker.drain(),
                KEY_LISTENER => lp.accept_ready(),
                token => lp.conn_ready(token, ev),
            }
        }
        lp.drain_completions();
        lp.maybe_start_drain();
        lp.sweep_idle();
        lp.metrics.record_loop_iteration(iter_start.elapsed(), events.len());
        if lp.draining && lp.conns.is_empty() {
            return Ok(());
        }
    }
}

impl Loop<'_> {
    /// Accept until the listener would block, shedding over-budget and
    /// chaos-saturated connections with an immediate `503` + close.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else { return };
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // The queued connection died before we reached it, or
                // the call was interrupted: the entry is consumed (or
                // nothing was), so trying the next one makes progress.
                Err(e)
                    if e.kind() == ErrorKind::ConnectionAborted
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    continue
                }
                // Any other failure (fd exhaustion, ENOMEM, ...) would
                // fail identically on retry: do NOT loop in place, or
                // the whole data plane livelocks behind this listener.
                Err(e) => {
                    self.accept_failed(&e);
                    return;
                }
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let saturated =
                self.faults.as_ref().is_some_and(|plane| plane.roll(FaultKind::Saturate));
            let over_budget = self.conns.len() >= self.config.max_conns;
            let read_budget = self.faults.as_ref().and_then(|plane| {
                plane.roll(FaultKind::TruncateBody).then(|| plane.truncate_after())
            });
            let token = self.next_token;
            self.next_token += 1;
            let mut conn = Conn::new(stream, read_budget);
            if saturated || over_budget {
                // Shed ladder rung 1: refuse before buffering anything.
                self.metrics.record_shed();
                chemcost_obs::event!(
                    chemcost_obs::Level::Warn,
                    "http.shed",
                    open_conns = self.conns.len(),
                    max_conns = self.config.max_conns,
                    shed_total = self.metrics.shed_total(),
                );
                let resp = Response::json(503, r#"{"error":"server overloaded"}"#);
                conn.enqueue_response(&resp, false);
                conn.closing = true;
            }
            self.metrics.inc_connections_open();
            self.conns.insert(token, conn);
            self.drive(token);
        }
    }

    /// A persistent `accept` failure. The caller returns to the main
    /// loop (the level-triggered poller re-reports the listener while
    /// the backlog is non-empty), so existing connections keep being
    /// serviced and the idle sweep keeps freeing fds.
    ///
    /// Fd exhaustion needs more than that: the pending connection is
    /// never dequeued by a failing `accept`, so the listener would stay
    /// ready and the loop would spin hot forever. Release the reserve
    /// fd, accept the connection into it, close it immediately (a
    /// budget-free shed), then reclaim the reserve — the backlog
    /// drains one entry per event-loop pass while starved.
    fn accept_failed(&mut self, e: &io::Error) {
        // Raw errno values (identical on Linux and the BSDs): std has
        // no stable `ErrorKind` for either.
        const ENFILE: i32 = 23;
        const EMFILE: i32 = 24;
        let fd_exhausted = matches!(e.raw_os_error(), Some(EMFILE) | Some(ENFILE));
        if fd_exhausted {
            self.fd_reserve = None;
            if let Some(listener) = &self.listener {
                if let Ok((stream, _)) = listener.accept() {
                    drop(stream); // immediate close: nothing buffered, nothing leaked
                    self.metrics.record_shed();
                }
            }
            self.fd_reserve = File::open("/dev/null").ok();
        }
        chemcost_obs::event!(
            chemcost_obs::Level::Warn,
            "http.accept_error",
            error = e.to_string(),
            fd_exhausted = fd_exhausted,
            open_conns = self.conns.len(),
        );
    }

    /// Handle readiness on one connection's socket.
    fn conn_ready(&mut self, token: usize, ev: &Event) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if ev.error && !ev.readable && !ev.writable {
            self.close(token);
            return;
        }
        if ev.readable {
            if !Self::fill_read_buf(conn) {
                self.close(token);
                return;
            }
            self.parse_available(token);
        }
        self.drive(token);
    }

    /// Pull bytes from the socket into the read buffer. Returns `false`
    /// when the connection is dead (hard error).
    fn fill_read_buf(conn: &mut Conn) -> bool {
        if conn.closing || conn.abort {
            return true; // ignore further client bytes
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if conn.read_budget == Some(0) {
                // Chaos truncate-body: the client "died" mid-upload.
                conn.peer_closed = true;
                return true;
            }
            let cap = conn.read_budget.map_or(READ_CHUNK, |b| b.min(READ_CHUNK));
            match conn.stream.read(&mut chunk[..cap]) {
                Ok(0) => {
                    conn.peer_closed = true;
                    return true;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    // The read stage of the next request starts at its
                    // first byte (a no-op mid-request).
                    conn.req_first_byte.get_or_insert_with(Instant::now);
                    if let Some(budget) = &mut conn.read_budget {
                        *budget -= n;
                    }
                    conn.idle_since = Instant::now();
                    // Backpressure: beyond the pipeline cap the rest of
                    // the bytes wait in the kernel buffer.
                    if conn.in_flight >= MAX_PIPELINE || conn.write_buf.len() >= WRITE_HIGH_WATER {
                        return true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Parse every complete request sitting in the read buffer and
    /// dispatch each to the worker pool (or answer parse errors
    /// directly). Pipelining lives here: the loop keeps going until the
    /// buffer holds no complete request.
    fn parse_available(&mut self, token: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.closing || conn.abort || conn.in_flight >= MAX_PIPELINE {
                return;
            }
            match parse_request(&conn.read_buf) {
                Ok(None) => return, // incomplete — wait for more bytes
                Ok(Some((req, consumed))) => {
                    conn.read_buf.drain(..consumed);
                    // This request's read stage ran from its first byte
                    // to now. Leftover bytes belong to the next
                    // pipelined request, whose clock starts immediately.
                    let first_byte = conn.req_first_byte.take().unwrap_or_else(Instant::now);
                    if !conn.read_buf.is_empty() {
                        conn.req_first_byte = Some(Instant::now());
                    }
                    conn.requests += 1;
                    if conn.requests > 1 {
                        self.metrics.record_keepalive_reuse();
                    }
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.in_flight += 1;
                    let keep_alive = req.keep_alive();
                    if !keep_alive {
                        // The client said close: answer this request,
                        // ignore anything pipelined behind it.
                        conn.closing = true;
                    }
                    self.dispatch(token, seq, req, keep_alive, first_byte);
                }
                Err(err) => {
                    // Rungs 3 of the shed ladder: the bytes are not (or
                    // cannot become) a servable request. Answer in
                    // sequence — pipelined predecessors still get their
                    // real responses first — then close.
                    let (status, msg) = match err {
                        HttpError::Malformed(msg) => (400, msg),
                        HttpError::Unsupported(status, msg) => (status, msg),
                        HttpError::Io(_) => {
                            self.close(token);
                            return;
                        }
                    };
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.in_flight += 1;
                    conn.closing = true;
                    let resp = Response::json(status, Json::obj([("error", msg.into())]).encode());
                    self.apply_done(Done {
                        token,
                        seq,
                        response: resp,
                        keep_alive: false,
                        timeline: None,
                    });
                    return;
                }
            }
        }
    }

    /// Hand one parsed request to the worker pool. A full compute queue
    /// is rung 2 of the shed ladder: this request gets a `503`, but the
    /// connection (and everything else pipelined on it) survives.
    fn dispatch(
        &mut self,
        token: usize,
        seq: u64,
        req: Request,
        keep_alive: bool,
        first_byte: Instant,
    ) {
        // Deadline anchor: the instant the request finished arriving.
        // Worker-queue wait happens after this, so it counts against the
        // request's budget exactly as the threadpool server's did.
        let arrived = Instant::now();
        let mut timeline =
            Box::new(TimelineBuilder::new(first_byte, arrived, &req.method, &req.path));
        let slow_io = self
            .faults
            .as_ref()
            .and_then(|plane| plane.roll(FaultKind::SlowIo).then(|| plane.slow_io_delay()));
        let router = self.router.clone();
        let metrics = Arc::clone(&self.metrics);
        let tx = self.done_tx.clone();
        let waker = Arc::clone(&self.waker);
        // Declare batch interest for the whole queue wait: a parsed
        // predict/advise request can still join a micro-batch, so the
        // collector must not drain while it sits in the compute queue.
        // The guard moves into the job and drops when handling ends.
        let batch_interest =
            self.router.is_batched_path(&req.path).then(|| self.router.batch_interest());
        self.metrics.pool_enqueued();
        let job: crate::pool::Job = Box::new(move || {
            metrics.pool_dequeued();
            // Chaos slow-io: the stall a seizing disk or GC pause would
            // cause, now on the worker so the loop thread never blocks.
            // It lands in the queue stage: the worker not getting to the
            // request is exactly what slow-io models.
            if let Some(delay) = slow_io {
                std::thread::sleep(delay);
            }
            timeline.stamp_dequeued();
            crate::timeline::begin_capture();
            let response = router.handle_from(&req, arrived);
            drop(batch_interest);
            timeline.stamp_handler_done();
            timeline.absorb(crate::timeline::end_capture(), response.status);
            let _ = tx.send(Done { token, seq, response, keep_alive, timeline: Some(timeline) });
            let _ = waker.wake();
        });
        if self.pool.execute(job).is_err() {
            self.metrics.pool_dequeued();
            self.metrics.record_shed();
            chemcost_obs::event!(
                chemcost_obs::Level::Warn,
                "http.shed",
                queue_cap = self.pool.queue_cap(),
                shed_total = self.metrics.shed_total(),
            );
            let resp = Response::json(503, r#"{"error":"server overloaded"}"#);
            self.apply_done(Done { token, seq, response: resp, keep_alive, timeline: None });
        }
    }

    /// Apply every completion workers have sent since the last pass.
    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            self.apply_done(done);
        }
    }

    /// Slot one finished response into its connection and encode every
    /// response that is now next-in-order onto the wire buffer.
    fn apply_done(&mut self, done: Done) {
        let draining = self.draining || self.router.shutdown_requested();
        let Some(conn) = self.conns.get_mut(&done.token) else { return };
        conn.in_flight -= 1;
        conn.done.insert(done.seq, (done.response, done.keep_alive, done.timeline));
        while let Some((response, keep_alive, timeline)) = conn.done.remove(&conn.next_flush) {
            conn.next_flush += 1;
            // Chaos drop-conn: a torn status line, then nothing — the
            // client must see a broken connection, never a half-body
            // that parses. The timeline dies with the response: the
            // request never completed on the wire.
            if self.faults.as_ref().is_some_and(|plane| plane.roll(FaultKind::DropConn)) {
                conn.enqueue_bytes(b"HTTP/1.1 ");
                conn.abort = true;
                conn.closing = true;
                break;
            }
            // Graceful drain: every response sent after shutdown was
            // requested tells the client this connection is over.
            let keep_alive = keep_alive && !draining;
            conn.enqueue_response(&response, keep_alive);
            // Reorder release: the response's turn came up and its last
            // byte now sits at offset `bytes_enqueued`; the timeline
            // completes once the socket has accepted that many bytes.
            if let Some(mut timeline) = timeline {
                timeline.stamp_encoded();
                conn.pending_timelines.push_back((conn.bytes_enqueued, timeline));
            }
            if !keep_alive {
                conn.closing = true;
            }
            conn.idle_since = Instant::now();
        }
        let token = done.token;
        // Responses may have freed pipeline slots: parse what waited.
        self.parse_available(token);
        self.drive(token);
    }

    /// Flush pending writes, finalize timelines whose last byte made it
    /// onto the wire, update the backpressure gauges, then reconcile
    /// poller registration with the connection's desired interest — or
    /// close the connection if it is finished.
    fn drive(&mut self, token: usize) {
        let (alive, completed) = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let ok = Self::flush_writes(conn);
            let completed = if ok { Self::take_flushed(conn) } else { Vec::new() };
            (ok && !conn.finished(), completed)
        };
        for timeline in completed {
            self.finalize_timeline(timeline);
        }
        if !alive {
            self.close(token);
            return;
        }
        let metrics = Arc::clone(&self.metrics);
        let Some(conn) = self.conns.get_mut(&token) else { return };
        // Gauge reconciliation: a connection is read-paused when it is
        // still a live reader but backpressure (pipeline cap or write
        // high-water) gates it; write-stalled when the socket would not
        // take the whole backlog.
        let read_gated = !conn.closing
            && !conn.abort
            && !conn.peer_closed
            && (conn.in_flight >= MAX_PIPELINE || conn.write_buf.len() >= WRITE_HIGH_WATER);
        if read_gated != conn.read_paused {
            conn.read_paused = read_gated;
            match read_gated {
                true => metrics.inc_read_paused(),
                false => metrics.dec_read_paused(),
            }
        }
        let stalled = !conn.write_buf.is_empty();
        if stalled != conn.write_stalled {
            conn.write_stalled = stalled;
            match stalled {
                true => metrics.inc_write_stalled(),
                false => metrics.dec_write_stalled(),
            }
        }
        let desired = conn.desired_interest();
        let fd = conn.stream.as_raw_fd();
        if desired == conn.registered {
            return;
        }
        let ok = match (conn.registered, desired) {
            (None, Some(interest)) => self.poller.register(fd, token, interest).is_ok(),
            (Some(_), Some(interest)) => self.poller.modify(fd, token, interest).is_ok(),
            (Some(_), None) => self.poller.deregister(fd).is_ok(),
            (None, None) => true,
        };
        match ok {
            true => conn.registered = desired,
            false => self.close(token),
        }
    }

    /// Pop every pending timeline whose response's last byte the socket
    /// has now accepted.
    fn take_flushed(conn: &mut Conn) -> Vec<TimelineBuilder> {
        let mut out = Vec::new();
        while conn.pending_timelines.front().is_some_and(|(end, _)| *end <= conn.bytes_flushed) {
            let (_, timeline) = conn.pending_timelines.pop_front().expect("checked front");
            out.push(*timeline);
        }
        out
    }

    /// A request's last byte is on the wire: derive the six stages, feed
    /// the histograms and the flight recorder, emit `request.timeline`.
    fn finalize_timeline(&self, timeline: TimelineBuilder) {
        let done = timeline.complete(Instant::now());
        for (stage, duration) in done.stage_durations() {
            self.metrics.record_request_stage(stage, duration);
        }
        done.emit_event();
        self.router.flight().record(done);
    }

    /// Write as much of the response buffer as the socket accepts.
    /// Returns `false` when the connection died under the write.
    fn flush_writes(conn: &mut Conn) -> bool {
        let mut written = 0;
        while written < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[written..]) {
                Ok(0) => return false,
                Ok(n) => {
                    written += n;
                    conn.idle_since = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if written > 0 {
            conn.write_buf.drain(..written);
            conn.bytes_flushed += written as u64;
            if conn.write_buf.is_empty() {
                let _ = conn.stream.flush();
            }
        }
        true
    }

    /// Tear a connection down: deregister, close, account.
    fn close(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.registered.is_some() {
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
            }
            if conn.read_paused {
                self.metrics.dec_read_paused();
            }
            if conn.write_stalled {
                self.metrics.dec_write_stalled();
            }
            self.metrics.dec_connections_open();
        }
    }

    /// First pass after `POST /v1/shutdown` lands: stop accepting, stop
    /// reading, close idle connections, and let in-flight responses
    /// (which now carry `Connection: close`) finish.
    fn maybe_start_drain(&mut self) {
        if self.draining || !self.router.shutdown_requested() {
            return;
        }
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.closing = true;
            }
            self.drive(token);
        }
        chemcost_obs::event!(
            chemcost_obs::Level::Info,
            "serve.drain",
            open_conns = self.conns.len(),
        );
    }

    /// Close keep-alive connections that have sat idle past the timeout
    /// — the event-loop equivalent of the old per-socket read timeout,
    /// so a slow-loris client cannot pin state forever.
    fn sweep_idle(&mut self) {
        let timeout = self.config.idle_timeout;
        let now = Instant::now();
        let stale: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.in_flight == 0 && c.done.is_empty() && now.duration_since(c.idle_since) > timeout
            })
            .map(|(t, _)| *t)
            .collect();
        for token in stale {
            self.close(token);
        }
    }
}
