//! Bridge between the serve daemon and the `chemcost-health` plane.
//!
//! `chemcost-health` is deliberately ignorant of this crate: it stores
//! and judges abstract named series. This module owns the mapping —
//! which [`Metrics`] readers feed which schema series, what the
//! built-in SLOs are, and the background sampler thread that
//! self-scrapes the registry every `--scrape-interval-ms` into the
//! hub's delta-compressed ring.
//!
//! Schema series names are stable, dot-separated, and documented in
//! `docs/HEALTH.md`; `--slo-file` rules reference them by name or
//! prefix. Per-group quality series (`quality.mape.<model>@<machine>`)
//! are fixed at sampler start from the groups registered at that
//! moment — groups appearing later (a model added mid-run) join the
//! schema on the next restart.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use chemcost_health::{
    HealthConfig, HealthHub, HistSample, HistSchema, Sample, Schema, Signal, SloSpec,
};
use chemcost_obs::{self as obs, Level};

use crate::batcher::FlushReason;
use crate::fault::FaultKind;
use crate::metrics::{AdviseStage, DeadlineStage, Metrics, RequestStage, Route};
use crate::routes::Router;

/// The built-in objectives, evaluated out of the box (and joined by
/// any `--slo-file` rules). Thresholds are deliberately loose — they
/// flag "users can tell something is wrong", not "p99 drifted 5%".
pub fn builtin_slos() -> Vec<SloSpec> {
    vec![
        // Whole-request handler p99; advise sweeps dominate the tail.
        SloSpec::new(
            "advise_p99_latency",
            Signal::Quantile { hist: "latency".into(), q: 0.99 },
            0.5,
        )
        .critical(),
        // Errors and sheds per request (sheds count as errors under
        // the `other` route, so `errors.` covers both).
        SloSpec::new(
            "error_ratio",
            Signal::Ratio { num: vec!["errors.".into()], den: vec!["requests.".into()] },
            0.05,
        )
        .critical(),
        SloSpec::new(
            "deadline_miss_ratio",
            Signal::Ratio { num: vec!["deadline_exceeded".into()], den: vec!["requests.".into()] },
            0.02,
        ),
        // Worst windowed MAPE across serving groups: the paper's
        // "guidance you can trust" bar.
        SloSpec::new("model_mape", Signal::ValueMax { prefix: "quality.mape.".into() }, 0.35),
        // Any drift-detector trip inside the window.
        SloSpec::new(
            "drift_trips",
            Signal::DeltaPrefix { prefix: "quality.drift_trips.".into() },
            0.5,
        ),
        // Batches closing on the window timer instead of drain/full
        // means submitters keep missing each other — latency for no
        // coalescing gain.
        SloSpec::new(
            "batch_window_overrun",
            Signal::Ratio {
                num: vec!["batch.flush.window".into()],
                den: vec!["batch.flush.".into()],
            },
            0.95,
        ),
    ]
}

/// Samples one [`Metrics`] registry into [`Sample`]s with a fixed
/// schema. Construction captures the quality groups registered at that
/// moment; `sample()` then reads every series in schema order.
pub struct MetricsSampler {
    schema: Arc<Schema>,
    /// `(model, machine)` pairs feeding the per-group series, in
    /// schema order.
    groups: Vec<(String, String)>,
}

impl MetricsSampler {
    /// Build the sampler and its schema from the currently registered
    /// quality groups.
    pub fn new(metrics: &Metrics) -> MetricsSampler {
        let mut groups: Vec<(String, String)> = Vec::new();
        for entry in metrics.quality_entries() {
            let key = (entry.model.clone(), entry.machine.clone());
            if !groups.contains(&key) {
                groups.push(key);
            }
        }
        let mut counters = Vec::new();
        for route in Route::ALL {
            counters.push(format!("requests.{}", route.label()));
        }
        for route in Route::ALL {
            counters.push(format!("errors.{}", route.label()));
        }
        counters.push("shed".into());
        counters.push("deadline_exceeded".into());
        counters.push("reload_failures".into());
        counters.push("stale_served".into());
        counters.push("keepalive_reuses".into());
        counters.push("cache.hits".into());
        counters.push("cache.misses".into());
        counters.push("quality.accepted".into());
        counters.push("quality.rejected".into());
        for reason in FlushReason::ALL {
            counters.push(format!("batch.flush.{}", reason.label()));
        }
        counters.push("batch.calls".into());
        counters.push("batch.rows".into());
        counters.push("loop.iterations".into());
        for (model, machine) in &groups {
            counters.push(format!("quality.drift_trips.{model}@{machine}"));
        }
        let gauges = vec![
            "inflight".to_string(),
            "queue.depth".to_string(),
            "connections.open".to_string(),
            "connections.read_paused".to_string(),
            "connections.write_stalled".to_string(),
            "cache.entries".to_string(),
        ];
        let mut values = vec!["staleness_seconds".to_string()];
        for (model, machine) in &groups {
            values.push(format!("quality.mape.{model}@{machine}"));
        }
        let bounds: Vec<f64> = Metrics::histogram_bounds().to_vec();
        let mut histograms = vec![HistSchema { name: "latency".into(), bounds: bounds.clone() }];
        for stage in AdviseStage::ALL {
            histograms.push(HistSchema {
                name: format!("advise.{}", stage.label()),
                bounds: bounds.clone(),
            });
        }
        for stage in RequestStage::ALL {
            histograms.push(HistSchema {
                name: format!("stage.{}", stage.label()),
                bounds: bounds.clone(),
            });
        }
        let schema = Arc::new(Schema { counters, gauges, values, histograms });
        MetricsSampler { schema, groups }
    }

    /// The schema `sample()` produces.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Read every schema series out of `metrics`, stamped `unix_us`.
    /// Series order must mirror the constructor exactly; the width
    /// assert catches any drift between the two.
    pub fn sample(&self, metrics: &Metrics, unix_us: u64) -> Sample {
        let mut counters = Vec::with_capacity(self.schema.counters.len());
        for route in Route::ALL {
            counters.push(metrics.requests(route));
        }
        for route in Route::ALL {
            counters.push(metrics.errors(route));
        }
        counters.push(metrics.shed_total());
        counters.push(DeadlineStage::ALL.iter().map(|&s| metrics.deadline_exceeded(s)).sum());
        counters.push(metrics.reload_failures());
        counters.push(metrics.stale_served());
        counters.push(metrics.keepalive_reuses());
        counters.push(metrics.cache_hits());
        counters.push(metrics.cache_misses());
        counters.push(metrics.quality_accepted());
        counters.push(metrics.quality_rejected());
        for reason in FlushReason::ALL {
            counters.push(metrics.batch_flushes(reason));
        }
        counters.push(metrics.batch_calls());
        counters.push(metrics.batch_rows());
        counters.push(metrics.loop_iterations());
        let quality = metrics.quality_entries();
        for (model, machine) in &self.groups {
            let trips: u64 = quality
                .iter()
                .filter(|e| &e.model == model && &e.machine == machine)
                .map(|e| e.stats.drift_trips)
                .sum();
            counters.push(trips);
        }
        let gauges = vec![
            metrics.in_flight() as i64,
            metrics.pool_queue_depth() as i64,
            metrics.connections_open() as i64,
            metrics.read_paused() as i64,
            metrics.write_stalled() as i64,
            metrics.cache_entries() as i64,
        ];
        let mut values = vec![metrics.model_staleness_seconds()];
        for (model, machine) in &self.groups {
            // Worst (max) MAPE across the group's versions; NaN until
            // any version has data.
            let mape = quality
                .iter()
                .filter(|e| &e.model == model && &e.machine == machine)
                .map(|e| e.stats.mape)
                .filter(|m| !m.is_nan())
                .fold(f64::NAN, f64::max);
            values.push(mape);
        }
        let mut hists = Vec::with_capacity(self.schema.histograms.len());
        let push = |hists: &mut Vec<HistSample>,
                    (buckets, sum_micros, count): ([u64; 11], u64, u64)| {
            hists.push(HistSample { buckets: buckets.to_vec(), sum_micros, count });
        };
        push(&mut hists, metrics.latency_snapshot());
        for stage in AdviseStage::ALL {
            push(&mut hists, metrics.advise_stage_snapshot(stage));
        }
        for stage in RequestStage::ALL {
            push(&mut hists, metrics.request_stage_snapshot(stage));
        }
        let sample = Sample { unix_us, counters, gauges, values, hists };
        debug_assert_eq!(self.schema.flatten(&sample).len(), self.schema.width());
        sample
    }

    /// Faults injected so far, summed over kinds (not part of the
    /// schema; used by the chaos soak assertions).
    pub fn faults_total(metrics: &Metrics) -> u64 {
        FaultKind::ALL.iter().map(|&k| metrics.faults_injected(k)).sum()
    }
}

/// The running health plane: sampler thread + hub. Dropping the handle
/// does NOT stop the thread; call [`HealthHandle::stop`].
pub struct HealthHandle {
    hub: Arc<HealthHub>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HealthHandle {
    /// The hub serving `/v1/health` and `/debug/slo`.
    pub fn hub(&self) -> &Arc<HealthHub> {
        &self.hub
    }

    /// Signal the sampler thread and join it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn unix_us_now() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}

/// Build the hub for `router`, install it on the router, register the
/// metrics + obs-event transition observer, and start the background
/// sampler thread. The returned handle must be `stop()`ped during
/// drain (the `Server::run` epilogue does).
pub fn start(router: &Router, config: HealthConfig) -> HealthHandle {
    let metrics = Arc::clone(router.metrics());
    let sampler = MetricsSampler::new(&metrics);
    let hub = Arc::new(HealthHub::new(Arc::clone(sampler.schema()), &config));
    router.install_health(Arc::clone(&hub));
    let obs_metrics = Arc::clone(&metrics);
    hub.on_transition(Box::new(move |t| {
        obs_metrics.record_alert_transition(t.to.label());
        obs::event!(
            Level::Warn,
            "health.alert",
            slo = t.slo.as_str(),
            from = t.from.label(),
            to = t.to.label(),
            value = t.value,
            threshold = t.threshold,
            critical = t.critical,
        );
    }));
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let hub = Arc::clone(&hub);
        let stop = Arc::clone(&stop);
        let interval = config.scrape_interval.max(Duration::from_millis(1));
        std::thread::Builder::new()
            .name("health-sampler".into())
            .spawn(move || {
                // Poll the stop flag at most every 50 ms so drain never
                // waits a full scrape interval on this thread.
                let nap = interval.min(Duration::from_millis(50));
                let mut next = std::time::Instant::now();
                while !stop.load(Ordering::SeqCst) {
                    if std::time::Instant::now() < next {
                        std::thread::sleep(nap);
                        continue;
                    }
                    next += interval;
                    let sample = sampler.sample(&metrics, unix_us_now());
                    hub.ingest(&sample);
                    let verdict = hub.verdict();
                    metrics.set_alert_gauges(verdict.firing, verdict.pending);
                    metrics
                        .record_slo_scrape(hub.slo_count() as u64, hub.breaching_count() as usize);
                }
            })
            .expect("spawn health sampler")
    };
    HealthHandle { hub, stop, thread: Some(thread) }
}
