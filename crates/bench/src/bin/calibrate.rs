//! Calibration harness (development tool, not a paper artifact): builds
//! both machines' full corpora, trains the deployed GB, and prints the
//! prediction/STQ/BQ scores plus the Aurora STQ table — the quickest
//! end-to-end signal when tuning `sim::machine` constants.

use chemcost_core::data::MachineData;
use chemcost_core::evaluation::prediction_scores;
use chemcost_core::pipeline::{bq_table, render_opt_table, stq_table, train_paper_gb};
use chemcost_sim::machine::{aurora, frontier};

fn main() {
    for m in [aurora(), frontier()] {
        let t0 = std::time::Instant::now();
        let md = MachineData::generate(&m, 42);
        println!(
            "== {} == corpus {} gen {:.1}s",
            m.name,
            md.samples.len(),
            t0.elapsed().as_secs_f64()
        );
        let secs: Vec<f64> = md.samples.iter().map(|s| s.seconds).collect();
        let (lo, hi) = secs.iter().fold((f64::MAX, 0.0f64), |(l, h), &v| (l.min(v), h.max(v)));
        println!("seconds range [{lo:.1}, {hi:.1}]");
        let t1 = std::time::Instant::now();
        let gb = train_paper_gb(&md);
        println!("GB train {:.2}s", t1.elapsed().as_secs_f64());
        let scores = prediction_scores(&gb, &md.test_samples());
        println!("test prediction: {scores}");
        let stq = stq_table(&md, &gb);
        println!("STQ: {} | incorrect {}/{}", stq.scores, stq.n_incorrect(), stq.rows.len());
        let bq = bq_table(&md, &gb);
        println!("BQ:  {} | incorrect {}/{}", bq.scores, bq.n_incorrect(), bq.rows.len());
        println!("{}", render_opt_table(&stq, &m.name).render());
    }
}
