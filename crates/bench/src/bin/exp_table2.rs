//! Reproduces **Table 2**: training and prediction wall times of the
//! deployed Gradient Boosting model (750 estimators, depth 10).
//!
//! Reported as mean ± std over repeated runs, like the paper.

use chemcost_bench::{emit, load_machine_data, machines_from_args, quick_mode};
use chemcost_core::data::Target;
use chemcost_core::report::Table;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use std::time::Instant;

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    (m, v.sqrt())
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.1} ms", seconds * 1e3)
    } else {
        format!("{:.0} µs", seconds * 1e6)
    }
}

fn main() {
    let reps = if quick_mode() { 2 } else { 5 };
    let mut t = Table::new(
        "Table 2: Training and prediction times for Gradient Boosting",
        &["System", "Training", "Prediction"],
    );
    for machine in machines_from_args() {
        let md = load_machine_data(&machine);
        let train = md.train_dataset(Target::Seconds);
        let test = md.test_dataset(Target::Seconds);
        let mut train_times = Vec::new();
        let mut pred_times = Vec::new();
        for rep in 0..reps {
            let mut gb = GradientBoosting::paper_config();
            gb.seed = rep as u64;
            let t0 = Instant::now();
            gb.fit(&train.x, &train.y).expect("fit");
            train_times.push(t0.elapsed().as_secs_f64());
            let t1 = Instant::now();
            let _ = gb.predict(&test.x);
            pred_times.push(t1.elapsed().as_secs_f64());
        }
        let (tm, ts) = mean_std(&train_times);
        let (pm, ps) = mean_std(&pred_times);
        t.push_row(vec![
            machine.name.clone(),
            format!("{} ± {}", fmt_time(tm), fmt_time(ts)),
            format!("{} ± {}", fmt_time(pm), fmt_time(ps)),
        ]);
    }
    emit(&t, "table2_gb_times");
}
