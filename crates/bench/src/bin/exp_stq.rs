//! Reproduces **Tables 3 and 4**: per-problem shortest-time configurations
//! (true vs. model-predicted) and the STQ goal scores.

use chemcost_bench::{emit, load_machine_data, machines_from_args, quick_mode};
use chemcost_core::pipeline::{render_opt_table, stq_table, train_fast_gb, train_paper_gb};

fn main() {
    for machine in machines_from_args() {
        let md = load_machine_data(&machine);
        let gb: Box<dyn chemcost_ml::Regressor> =
            if quick_mode() { Box::new(train_fast_gb(&md)) } else { Box::new(train_paper_gb(&md)) };
        let table = stq_table(&md, gb.as_ref());
        let rendered = render_opt_table(&table, &machine.name);
        emit(&rendered, &format!("{}_stq", machine.name));
        println!(
            "{} STQ goal scores: {}   (mispredicted configurations: {}/{})\n",
            machine.name,
            table.scores,
            table.n_incorrect(),
            table.rows.len()
        );
    }
}
