//! Extension experiment: the **Energy Question** — which configuration
//! burns the fewest kilowatt-hours per CCSD iteration?
//!
//! Node-hours (the paper's BQ) charge every node equally; energy also
//! charges for *how hard* the nodes work, so poorly utilized overscaled
//! runs look cheaper in kWh/node-hour but are not free. The experiment
//! trains a GB directly on the simulated energy target and reports the
//! per-problem greenest configurations (true vs predicted), mirroring the
//! Tables 5–6 protocol with energy as the objective.

use chemcost_bench::{emit, load_machine_data, machines_from_args, quick_mode};
use chemcost_core::data::Target;
use chemcost_core::report::{paren_cell, Table};
use chemcost_linalg::Matrix;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::metrics::Scores;
use chemcost_ml::Regressor;

fn main() {
    for machine in machines_from_args() {
        let md = load_machine_data(&machine);
        let train = md.train_dataset(Target::EnergyKwh);
        let mut gb = if quick_mode() {
            GradientBoosting::new(200, 6, 0.1)
        } else {
            GradientBoosting::paper_config()
        };
        gb.fit(&train.x, &train.y).expect("energy model fit");

        // Per-problem greenest configuration over the test split.
        let test = md.test_samples();
        let mut x = Matrix::zeros(0, 4);
        for s in &test {
            x.push_row(&s.features());
        }
        let pred = gb.predict(&x);

        let mut groups: std::collections::BTreeMap<(usize, usize), Vec<usize>> = Default::default();
        for (i, s) in test.iter().enumerate() {
            groups.entry((s.o, s.v)).or_default().push(i);
        }
        let mut t = Table::new(
            &format!("{} greenest-configuration results (energy question)", machine.name),
            &["O", "V", "Nodes", "Tile size", "Energy (kWh)"],
        );
        let mut y_true = Vec::new();
        let mut y_at_pred = Vec::new();
        let mut incorrect = 0;
        for ((o, v), idx) in groups {
            let argmin = |key: &dyn Fn(usize) -> f64| {
                idx.iter()
                    .copied()
                    .min_by(|&a, &b| key(a).partial_cmp(&key(b)).unwrap())
                    .expect("non-empty group")
            };
            let tb = argmin(&|i| test[i].energy_kwh);
            let pb = argmin(&|i| pred[i]);
            let correct = (test[tb].nodes, test[tb].tile) == (test[pb].nodes, test[pb].tile);
            if !correct {
                incorrect += 1;
            }
            y_true.push(test[tb].energy_kwh);
            y_at_pred.push(test[pb].energy_kwh);
            t.push_row(vec![
                o.to_string(),
                v.to_string(),
                paren_cell(&test[tb].nodes.to_string(), &test[pb].nodes.to_string(), correct),
                paren_cell(&test[tb].tile.to_string(), &test[pb].tile.to_string(), correct),
                paren_cell(
                    &format!("{:.1}", test[tb].energy_kwh),
                    &format!("{:.1}", test[pb].energy_kwh),
                    correct,
                ),
            ]);
        }
        emit(&t, &format!("{}_energy", machine.name));
        let scores = Scores::compute(&y_true, &y_at_pred);
        println!(
            "{} energy-question goal scores: {scores}   (mispredicted: {incorrect}/{})\n",
            machine.name,
            y_true.len()
        );
    }
}
