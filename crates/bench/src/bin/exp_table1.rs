//! Reproduces **Table 1**: dataset sizes and train/test breakdown.

use chemcost_bench::{emit, load_machine_data, machines_from_args};
use chemcost_core::report::Table;

fn main() {
    let mut t = Table::new(
        "Table 1: Datasets and the corresponding size breakdowns",
        &["System", "Total", "Train", "Test"],
    );
    for machine in machines_from_args() {
        let md = load_machine_data(&machine);
        t.push_row(vec![
            machine.name.clone(),
            md.samples.len().to_string(),
            md.train_idx.len().to_string(),
            md.test_idx.len().to_string(),
        ]);
    }
    emit(&t, "table1_datasets");
}
