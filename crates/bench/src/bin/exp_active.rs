//! Reproduces **Figures 3 and 4**: active-learning curves (R², MAPE, MAE
//! on the training pool vs. number of labelled experiments) for the three
//! query strategies RS / US / QC, per machine.

use chemcost_active::{ActiveConfig, Strategy};
use chemcost_bench::{emit, f3, load_machine_data, machines_from_args, quick_mode, s2};
use chemcost_core::pipeline::active_learning_run;
use chemcost_core::report::Table;

fn main() {
    let cfg = if quick_mode() {
        ActiveConfig {
            n_initial: 50,
            query_size: 50,
            n_queries: 5,
            seed: 1,
            gb_shape: (80, 5, 0.1),
        }
    } else {
        ActiveConfig {
            n_initial: 50,
            query_size: 50,
            n_queries: 20,
            seed: 1,
            gb_shape: (150, 6, 0.1),
        }
    };
    for machine in machines_from_args() {
        let md = load_machine_data(&machine);
        let figure = if machine.name == "aurora" { "Figure 3" } else { "Figure 4" };
        let mut t = Table::new(
            &format!("{figure}: {} active learning results", machine.name),
            &["Strategy", "n_labeled", "R2", "MAPE", "MAE"],
        );
        for strategy in Strategy::all() {
            println!("{}: running {strategy} …", machine.name);
            let run = active_learning_run(&md, strategy, None, &cfg);
            for r in &run.rounds {
                t.push_row(vec![
                    strategy.abbrev().to_string(),
                    r.n_labeled.to_string(),
                    f3(r.pool.r2),
                    f3(r.pool.mape),
                    s2(r.pool.mae),
                ]);
            }
            for target in [0.2, 0.1] {
                match run.samples_to_mape(target) {
                    Some(n) => println!(
                        "  {strategy}: MAPE ≤ {target} reached with {n} experiments ({:.0}% of the corpus)",
                        100.0 * n as f64 / md.samples.len() as f64
                    ),
                    None => println!("  {strategy}: MAPE ≤ {target} not reached"),
                }
            }
        }
        emit(&t, &format!("{}_fig_active", machine.name));
    }
}
