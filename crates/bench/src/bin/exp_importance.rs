//! Analysis experiment (beyond the paper's figures): permutation feature
//! importance of the deployed GB model — which of O, V, nodes, tile
//! actually drives the predicted wall time on each machine.
//!
//! A physics sanity check as much as an ML one: the CCSD iteration cost is
//! quartic in V and quadratic in O, so V must dominate, with the runtime
//! knobs (nodes, tile) contributing through parallel efficiency.

use chemcost_bench::{emit, load_machine_data, machines_from_args, quick_mode};
use chemcost_core::data::Target;
use chemcost_core::pipeline::{train_fast_gb, train_paper_gb};
use chemcost_core::report::Table;
use chemcost_ml::importance::ranked_importance;
use chemcost_ml::partial_dependence::{feature_grid, partial_dependence};

fn main() {
    let mut t = Table::new(
        "Permutation feature importance of the deployed GB (test split)",
        &["System", "Rank", "Feature", "MSE increase"],
    );
    for machine in machines_from_args() {
        let md = load_machine_data(&machine);
        let gb: Box<dyn chemcost_ml::Regressor> =
            if quick_mode() { Box::new(train_fast_gb(&md)) } else { Box::new(train_paper_gb(&md)) };
        let test = md.test_dataset(Target::Seconds);
        let ranked = ranked_importance(gb.as_ref(), &test.x, &test.y, &test.feature_names, 42);
        for (rank, (name, imp)) in ranked.iter().enumerate() {
            t.push_row(vec![
                machine.name.clone(),
                (rank + 1).to_string(),
                name.clone(),
                format!("{imp:.1}"),
            ]);
        }

        // Partial-dependence sanity check on the runtime knobs: the model
        // should exhibit the interior optima the simulator has.
        for (feature, label) in [(2usize, "nodes"), (3usize, "tile")] {
            let grid = feature_grid(&test.x, feature, 12);
            let pd = partial_dependence(gb.as_ref(), &test.x, feature, &grid);
            println!(
                "{}: marginal runtime response to {label}: argmin at {:.0}                  (relative swing {:.2})",
                machine.name,
                pd.argmin(),
                pd.relative_swing()
            );
        }
    }
    emit(&t, "feature_importance");
}
