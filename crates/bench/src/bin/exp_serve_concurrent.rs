//! Concurrent-serving experiment: latency and coalescing of the
//! event-driven data plane across a connections × batch-window grid.
//!
//! For each combination, a real `Server` is bound on loopback and
//! driven by N keep-alive client threads issuing sequential
//! `/v1/predict` requests; per-request round-trip latencies and the
//! server's own batcher metrics are recorded. Writes
//! `results/serve_concurrent.csv` with one row per combination:
//!
//! ```text
//! conns,batch_window_us,requests,p50_us,p99_us,throughput_rps,batch_calls,batch_rows
//! ```
//!
//! Reproduce: `cargo run --release -p chemcost-bench --bin exp_serve_concurrent`

use chemcost_core::data::{MachineData, Target};
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_serve::{BatcherConfig, ModelRegistry, Router, Server};
use chemcost_sim::machine::aurora;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const REQUESTS_PER_CONN: usize = 50;
const PREDICT: &str = r#"{"rows": [{"o": 100, "v": 800, "nodes": 32, "tile": 24}]}"#;

fn trained_model() -> GradientBoosting {
    let md = MachineData::generate_sized(&aurora(), 400, 42);
    let train = md.train_dataset(Target::Seconds);
    let mut gb = GradientBoosting::new(100, 6, 0.1);
    gb.seed = 42;
    gb.fit(&train.x, &train.y).unwrap();
    gb
}

fn request_bytes(path: &str, body: &str, close: bool) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: exp\r\nContent-Length: {}{}\r\n\r\n{body}",
        body.len(),
        if close { "\r\nConnection: close" } else { "" },
    )
    .into_bytes()
}

/// Read one Content-Length-framed response; returns the body.
fn read_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> String {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "EOF before response head");
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&carry[..head_end]).expect("UTF-8 head").to_string();
    assert!(head.starts_with("HTTP/1.1 200"), "non-200: {head:?}");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length");
    while carry.len() < head_end + length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "EOF mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&carry[head_end..head_end + length]).into_owned();
    carry.drain(..head_end + length);
    body
}

/// Simple HTTP exchange on a fresh connection.
fn oneshot(addr: SocketAddr, method: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: exp\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default()
}

/// `chemcost_<name> <value>` from a /metrics scrape.
fn series(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("series {name} missing"))
}

struct Row {
    conns: usize,
    window_us: u64,
    requests: usize,
    p50: Duration,
    p99: Duration,
    rps: f64,
    batch_calls: u64,
    batch_rows: u64,
}

fn run_cell(gb: &GradientBoosting, conns: usize, window_us: u64) -> Row {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("gb", "aurora", gb.clone());
    let server = Server::bind("127.0.0.1:0", Router::new(registry), 4)
        .expect("bind")
        .with_queue_cap(2 * conns.max(4))
        .with_batch_config(BatcherConfig {
            window: Duration::from_micros(window_us),
            max_rows: 1024,
        });
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let barrier = Arc::new(Barrier::new(conns));
    let wall = Instant::now();
    let clients: Vec<_> = (0..conns)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut carry = Vec::new();
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CONN);
                barrier.wait();
                for n in 0..REQUESTS_PER_CONN {
                    let start = Instant::now();
                    stream
                        .write_all(&request_bytes(
                            "/v1/predict",
                            PREDICT,
                            n + 1 == REQUESTS_PER_CONN,
                        ))
                        .unwrap();
                    read_response(&mut stream, &mut carry);
                    latencies.push(start.elapsed());
                }
                latencies
            })
        })
        .collect();
    let mut all: Vec<Duration> =
        clients.into_iter().flat_map(|c| c.join().expect("client")).collect();
    let elapsed = wall.elapsed();
    all.sort_unstable();

    let metrics = oneshot(addr, "GET", "/metrics");
    let row = Row {
        conns,
        window_us,
        requests: all.len(),
        p50: all[all.len() / 2],
        p99: all[(all.len() * 99) / 100 - 1],
        rps: all.len() as f64 / elapsed.as_secs_f64(),
        batch_calls: series(&metrics, "chemcost_batch_size_count"),
        batch_rows: series(&metrics, "chemcost_batch_size_sum"),
    };
    oneshot(addr, "POST", "/v1/shutdown");
    server_thread.join().expect("server thread").expect("clean shutdown");
    row
}

fn main() {
    let gb = trained_model();
    let mut csv = String::from(
        "conns,batch_window_us,requests,p50_us,p99_us,throughput_rps,batch_calls,batch_rows\n",
    );
    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>9} {:>11} {:>11} {:>10}",
        "conns", "window_us", "requests", "p50_us", "p99_us", "rps", "batch_calls", "batch_rows"
    );
    for &conns in &[1usize, 8, 32, 64] {
        for &window_us in &[0u64, 200, 1000] {
            let r = run_cell(&gb, conns, window_us);
            println!(
                "{:>6} {:>10} {:>9} {:>9.0} {:>9.0} {:>11.0} {:>11} {:>10}",
                r.conns,
                r.window_us,
                r.requests,
                r.p50.as_secs_f64() * 1e6,
                r.p99.as_secs_f64() * 1e6,
                r.rps,
                r.batch_calls,
                r.batch_rows
            );
            csv.push_str(&format!(
                "{},{},{},{:.0},{:.0},{:.0},{},{}\n",
                r.conns,
                r.window_us,
                r.requests,
                r.p50.as_secs_f64() * 1e6,
                r.p99.as_secs_f64() * 1e6,
                r.rps,
                r.batch_calls,
                r.batch_rows
            ));
        }
    }
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/serve_concurrent.csv", csv).expect("write csv");
    println!("\nwrote results/serve_concurrent.csv");
}
