//! Extension experiment: cross-machine transfer learning — the paper's
//! "new architecture with little data" scenario (§3.4) attacked by model
//! reuse instead of (or alongside) active learning.
//!
//! Source: the deployed GB trained on the full Aurora corpus.
//! Target: Frontier with a growing number of measurements. Compared:
//!
//! * **zero-shot** — the Aurora model applied unchanged,
//! * **transfer** — Aurora model × log-ratio correction fitted on the
//!   target samples (`ml::transfer`),
//! * **scratch** — a GB trained only on the target samples.

use chemcost_bench::{emit, f3, quick_mode, SEED};
use chemcost_core::data::{MachineData, Target};
use chemcost_core::evaluation::prediction_scores;
use chemcost_core::report::Table;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::transfer::TransferModel;
use chemcost_ml::Regressor;
use chemcost_sim::machine::{aurora, frontier};

fn main() {
    let (source_machine, target_machine) = (aurora(), frontier());
    println!("training the source model on the full {} corpus …", source_machine.name);
    let source_md = if quick_mode() {
        MachineData::generate_sized(&source_machine, 800, SEED)
    } else {
        MachineData::generate(&source_machine, SEED)
    };
    let source_train = source_md.train_dataset(Target::Seconds);
    let mut source_gb = if quick_mode() {
        GradientBoosting::new(200, 6, 0.1)
    } else {
        GradientBoosting::paper_config()
    };
    source_gb.fit(&source_train.x, &source_train.y).expect("source fit");

    let target_md = if quick_mode() {
        MachineData::generate_sized(&target_machine, 800, SEED + 1)
    } else {
        MachineData::generate(&target_machine, SEED + 1)
    };
    let target_train = target_md.train_dataset(Target::Seconds);
    let target_test = target_md.test_samples();

    // Zero-shot baseline: source model evaluated on the target test set.
    let zero_shot = prediction_scores(&source_gb, &target_test);
    println!("zero-shot {} → {}: {zero_shot}\n", source_machine.name, target_machine.name);

    let budgets: &[usize] =
        if quick_mode() { &[50, 150, 400] } else { &[50, 100, 200, 400, 800, 1600] };
    let mut t = Table::new(
        &format!(
            "Transfer learning {} → {} (test MAPE by target-sample budget)",
            source_machine.name, target_machine.name
        ),
        &["Target samples", "Zero-shot", "Transfer", "From scratch"],
    );
    for &n in budgets {
        let n = n.min(target_train.len());
        // Deterministic spread over the target training set.
        let idx: Vec<usize> = (0..n).map(|i| i * target_train.len() / n).collect();
        let sub = target_train.select(&idx);

        let mut transfer = TransferModel::new(Box::new(source_gb.clone()));
        transfer.fit(&sub.x, &sub.y).expect("transfer fit");
        let transfer_scores = prediction_scores(&transfer, &target_test);

        let mut scratch = GradientBoosting::new(300, 6, 0.1);
        scratch.fit(&sub.x, &sub.y).expect("scratch fit");
        let scratch_scores = prediction_scores(&scratch, &target_test);

        t.push_row(vec![
            n.to_string(),
            f3(zero_shot.mape),
            f3(transfer_scores.mape),
            f3(scratch_scores.mape),
        ]);
        println!(
            "{n:>5} target samples: transfer MAPE {:.3}, scratch {:.3}",
            transfer_scores.mape, scratch_scores.mape
        );
    }
    emit(&t, "transfer_learning");
}
