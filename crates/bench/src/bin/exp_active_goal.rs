//! Reproduces **Figures 5 and 6**: active learning evaluated against the
//! STQ and BQ goals — the per-round model is scored by the true cost of
//! the configurations it would recommend (§3.4's config-inferred loss),
//! for each query strategy, per machine.

use chemcost_active::{ActiveConfig, Strategy};
use chemcost_bench::{emit, f3, load_machine_data, machines_from_args, quick_mode, s2};
use chemcost_core::advisor::Goal;
use chemcost_core::pipeline::active_learning_run;
use chemcost_core::report::Table;

fn main() {
    let cfg = if quick_mode() {
        ActiveConfig {
            n_initial: 50,
            query_size: 50,
            n_queries: 5,
            seed: 1,
            gb_shape: (80, 5, 0.1),
        }
    } else {
        ActiveConfig {
            n_initial: 50,
            query_size: 50,
            n_queries: 20,
            seed: 1,
            gb_shape: (150, 6, 0.1),
        }
    };
    for machine in machines_from_args() {
        let md = load_machine_data(&machine);
        let figure = if machine.name == "aurora" { "Figure 5" } else { "Figure 6" };
        let mut t = Table::new(
            &format!(
                "{figure}: {} active learning for the shortest-time and budget questions",
                machine.name
            ),
            &["Goal", "Strategy", "n_labeled", "R2", "MAPE", "MAE"],
        );
        for goal in [Goal::ShortestTime, Goal::Budget] {
            for strategy in Strategy::all() {
                println!("{}: running {}-{strategy} …", machine.name, goal.abbrev());
                let run = active_learning_run(&md, strategy, Some(goal), &cfg);
                for r in &run.rounds {
                    let g = r.goal.expect("goal evaluator supplied");
                    t.push_row(vec![
                        goal.abbrev().to_string(),
                        strategy.abbrev().to_string(),
                        r.n_labeled.to_string(),
                        f3(g.r2),
                        f3(g.mape),
                        s2(g.mae),
                    ]);
                }
                // Key observations in the paper's style.
                let reached = run
                    .rounds
                    .iter()
                    .find(|r| r.goal.map(|g| g.mape <= 0.2).unwrap_or(false))
                    .map(|r| r.n_labeled);
                match reached {
                    Some(n) => println!(
                        "  {}-{strategy}: goal MAPE ≤ 0.2 with {n} experiments ({:.0}% of corpus)",
                        goal.abbrev(),
                        100.0 * n as f64 / md.samples.len() as f64
                    ),
                    None => println!("  {}-{strategy}: goal MAPE ≤ 0.2 not reached", goal.abbrev()),
                }
            }
        }
        emit(&t, &format!("{}_fig_active_goal", machine.name));
    }
}
