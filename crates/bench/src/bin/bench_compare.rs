//! Compare two bench baseline files (written by the criterion shim's
//! `--save-baseline`) and fail on median regressions.
//!
//! CI's `bench-regression` job runs the `advisor_sweep` and
//! `serve_throughput` benches into `BENCH_PR.json` and then:
//!
//! ```text
//! bench_compare --baseline BENCH_baseline.json --candidate BENCH_PR.json
//! ```
//!
//! exits non-zero if any benchmark present in both files got more than
//! `--threshold` (default 0.20 = 20%) slower by median. Entries whose
//! name contains `/p99` are tail latencies measured across concurrent
//! clients — inherently noisier than medians on shared runners — and
//! are gated by the looser `--tail-threshold` (default 0.50 = 50%)
//! instead. Benchmarks only in one file are reported but never fail the
//! run — filters and newly added benches must not break CI.
//!
//! `--summary FILE` additionally writes the comparison as a GitHub
//! markdown table (before/after/Δ%); the bench-regression job appends
//! it to `$GITHUB_STEP_SUMMARY` so the delta shows up on the run page
//! without digging through logs.

use chemcost_serve::json::Json;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// name → median ns, from one baseline file's `results` object.
fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v = Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let results = v.get("results").ok_or_else(|| format!("{path}: no \"results\" object"))?;
    let Json::Obj(pairs) = results else {
        return Err(format!("{path}: \"results\" is not an object"));
    };
    let mut out = BTreeMap::new();
    for (name, ns) in pairs {
        let ns = ns.as_f64().ok_or_else(|| format!("{path}: {name:?} is not a number"))?;
        out.insert(name.clone(), ns);
    }
    Ok(out)
}

struct Args {
    baseline: String,
    candidate: String,
    threshold: f64,
    tail_threshold: f64,
    summary: Option<String>,
}

impl Args {
    /// The regression budget for one benchmark: `/p99` tail entries get
    /// the looser tail threshold, everything else the median threshold.
    fn threshold_for(&self, name: &str) -> f64 {
        if name.contains("/p99") {
            self.tail_threshold
        } else {
            self.threshold
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut candidate = None;
    let mut threshold = 0.20f64;
    let mut tail_threshold = 0.50f64;
    let mut summary = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        let fraction = |flag: &str, raw: String| -> Result<f64, String> {
            let parsed: f64 = raw.parse().map_err(|e| format!("bad {flag}: {e}"))?;
            if !(0.0..10.0).contains(&parsed) {
                return Err(format!("{flag} {parsed} out of range [0, 10)"));
            }
            Ok(parsed)
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--candidate" => candidate = Some(value("--candidate")?),
            "--threshold" => threshold = fraction("--threshold", value("--threshold")?)?,
            "--tail-threshold" => {
                tail_threshold = fraction("--tail-threshold", value("--tail-threshold")?)?
            }
            "--summary" => summary = Some(value("--summary")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("missing --baseline FILE")?,
        candidate: candidate.ok_or("missing --candidate FILE")?,
        threshold,
        tail_threshold,
        summary,
    })
}

/// One comparison row, shared by the console table and the markdown
/// summary.
struct Row {
    name: String,
    base_ns: Option<f64>,
    cand_ns: Option<f64>,
    /// Over-budget by this row's threshold (always false for one-sided
    /// rows).
    regressed: bool,
}

/// Human time: `942075` → `"942.1 µs"`. Keeps the markdown table
/// readable across the ns-to-ms span the suite covers.
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Render the comparison as a GitHub markdown table.
fn render_markdown(rows: &[Row], args: &Args) -> String {
    let mut out = String::new();
    out.push_str("### Bench comparison\n\n");
    out.push_str("| benchmark | baseline | candidate | Δ | status |\n");
    out.push_str("|---|--:|--:|--:|---|\n");
    for row in rows {
        let (base, cand) = (row.base_ns, row.cand_ns);
        let delta = match (base, cand) {
            (Some(b), Some(c)) if b > 0.0 => format!("{:+.1}%", (c / b - 1.0) * 100.0),
            _ => "—".to_string(),
        };
        let status = match (base, cand) {
            (Some(_), Some(_)) if row.regressed => "**REGRESSED**",
            (Some(_), Some(_)) => "ok",
            (Some(_), None) => "missing in candidate",
            _ => "new",
        };
        let fmt = |ns: Option<f64>| ns.map(format_ns).unwrap_or_else(|| "—".to_string());
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} |\n",
            row.name,
            fmt(base),
            fmt(cand),
            delta,
            status
        ));
    }
    out.push_str(&format!(
        "\nBudgets: {:.0}% by median, {:.0}% for `/p99` tails.\n",
        args.threshold * 100.0,
        args.tail_threshold * 100.0
    ));
    out
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baseline = load(&args.baseline)?;
    let candidate = load(&args.candidate)?;

    let mut regressions = Vec::new();
    let mut rows = Vec::new();
    let mut compared = 0usize;
    println!("{:<52} {:>12} {:>12} {:>8}", "benchmark", "baseline", "candidate", "ratio");
    for (name, &base_ns) in &baseline {
        let Some(&cand_ns) = candidate.get(name) else {
            println!("{name:<52} {base_ns:>12.0} {:>12} {:>8}", "-", "-");
            rows.push(Row {
                name: name.clone(),
                base_ns: Some(base_ns),
                cand_ns: None,
                regressed: false,
            });
            continue;
        };
        compared += 1;
        let threshold = args.threshold_for(name);
        let ratio = if base_ns > 0.0 { cand_ns / base_ns } else { f64::INFINITY };
        let flag = if ratio > 1.0 + threshold { "  REGRESSED" } else { "" };
        println!("{name:<52} {base_ns:>12.0} {cand_ns:>12.0} {ratio:>8.3}{flag}");
        rows.push(Row {
            name: name.clone(),
            base_ns: Some(base_ns),
            cand_ns: Some(cand_ns),
            regressed: ratio > 1.0 + threshold,
        });
        if ratio > 1.0 + threshold {
            regressions.push((name.clone(), ratio, threshold));
        }
    }
    for name in candidate.keys().filter(|n| !baseline.contains_key(*n)) {
        println!("{name:<52} {:>12} {:>12} {:>8}  (new)", "-", candidate[name], "-");
        rows.push(Row {
            name: name.clone(),
            base_ns: None,
            cand_ns: Some(candidate[name]),
            regressed: false,
        });
    }

    if let Some(path) = &args.summary {
        let markdown = render_markdown(&rows, &args);
        std::fs::write(path, markdown).map_err(|e| format!("writing {path}: {e}"))?;
    }

    if compared == 0 {
        return Err("no benchmarks in common between baseline and candidate".into());
    }
    if regressions.is_empty() {
        println!(
            "\nok: {compared} benchmarks within {:.0}% of baseline ({:.0}% for /p99 tails)",
            args.threshold * 100.0,
            args.tail_threshold * 100.0
        );
        return Ok(true);
    }
    println!("\n{} regression(s):", regressions.len());
    for (name, ratio, threshold) in &regressions {
        println!(
            "  {name}: {:.1}% slower (budget {:.0}%)",
            (ratio - 1.0) * 100.0,
            threshold * 100.0
        );
    }
    Ok(false)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_compare: {msg}");
            eprintln!(
                "usage: bench_compare --baseline FILE --candidate FILE \
                 [--threshold FRACTION] [--tail-threshold FRACTION] [--summary FILE]"
            );
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args() -> Args {
        Args {
            baseline: String::new(),
            candidate: String::new(),
            threshold: 0.20,
            tail_threshold: 0.50,
            summary: None,
        }
    }

    #[test]
    fn format_ns_picks_readable_units() {
        assert_eq!(format_ns(318.0), "318 ns");
        assert_eq!(format_ns(942_075.0), "942.1 µs");
        assert_eq!(format_ns(6_294_680.0), "6.29 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.50 s");
    }

    #[test]
    fn markdown_table_shows_delta_and_status() {
        let rows = [
            Row {
                name: "serve_predict/batch/256".into(),
                base_ns: Some(942_075.0),
                cand_ns: Some(400_000.0),
                regressed: false,
            },
            Row {
                name: "serve_advise/goal/stq".into(),
                base_ns: Some(1_000.0),
                cand_ns: Some(1_400.0),
                regressed: true,
            },
            Row { name: "fresh/bench".into(), base_ns: None, cand_ns: Some(5.0), regressed: false },
        ];
        let md = render_markdown(&rows, &args());
        assert!(md.contains("| `serve_predict/batch/256` | 942.1 µs | 400.0 µs | -57.5% | ok |"));
        assert!(
            md.contains("| `serve_advise/goal/stq` | 1.0 µs | 1.4 µs | +40.0% | **REGRESSED** |")
        );
        assert!(md.contains("| `fresh/bench` | — | 5 ns | — | new |"));
        assert!(md.contains("Budgets: 20% by median, 50% for `/p99` tails."));
    }
}
