//! Reproduces **Figures 1 and 2**: R², MAE, MAPE and hyper-parameter
//! optimization wall time for all nine model families × three search
//! strategies (grid / randomized / Bayesian), per machine.
//!
//! The paper plots these as bar charts; here each machine gets one table
//! with a row per (model, strategy) cell plus a per-machine winner line.

//! Pass `--extended` to additionally sweep the repository's extra model
//! families (k-NN, elastic net, MLP) alongside the paper's nine.

use chemcost_bench::{emit, f3, load_machine_data, machines_from_args, quick_mode, s2};
use chemcost_core::pipeline::{compare_model_set, ComparisonBudget};
use chemcost_core::report::Table;
use chemcost_ml::zoo::ModelKind;

fn main() {
    let budget = if quick_mode() {
        ComparisonBudget { cv_folds: 3, random_iters: 4, bayes_iters: 5, search_rows: 200 }
    } else {
        ComparisonBudget::default()
    };
    let extended = std::env::args().any(|a| a == "--extended");
    let kinds: Vec<ModelKind> =
        if extended { ModelKind::all_extended().to_vec() } else { ModelKind::all().to_vec() };
    for machine in machines_from_args() {
        let md = load_machine_data(&machine);
        let figure = if machine.name == "aurora" { "Figure 1" } else { "Figure 2" };
        println!(
            "running {} sweep for {} (this trains {} model/search cells)…",
            figure,
            machine.name,
            kinds.len() * 3
        );
        let rows = compare_model_set(&md, &budget, &kinds);
        let mut t = Table::new(
            &format!("{figure}: performance metrics for {}", machine.name),
            &["Model", "Search", "R2", "MAE", "MAPE", "Opt time (s)"],
        );
        for r in &rows {
            t.push_row(vec![
                r.kind.abbrev().to_string(),
                r.strategy.label().to_string(),
                f3(r.test.r2),
                s2(r.test.mae),
                f3(r.test.mape),
                s2(r.search_seconds),
            ]);
        }
        let stem = if extended {
            format!("{}_fig_models_extended", machine.name)
        } else {
            format!("{}_fig_models", machine.name)
        };
        emit(&t, &stem);
        // The paper's headline observation: GB yields the best overall
        // R²/MAE/MAPE on both machines.
        let best = rows
            .iter()
            .min_by(|a, b| a.test.mape.partial_cmp(&b.test.mape).unwrap())
            .expect("rows");
        println!(
            "{}: best MAPE cell = {} via {} ({})\n",
            machine.name,
            best.kind.abbrev(),
            best.strategy.label(),
            best.test
        );
    }
}
