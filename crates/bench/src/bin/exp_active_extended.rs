//! Extension experiment (beyond the paper's figures): learning curves for
//! *all five* query strategies — the paper's RS/US/QC plus the two
//! strategies §3.4 names without evaluating, expected model change (EMC)
//! and a greedy diversity baseline (DIV).

use chemcost_active::{ActiveConfig, Strategy};
use chemcost_bench::{emit, f3, load_machine_data, machines_from_args, quick_mode, s2};
use chemcost_core::pipeline::active_learning_run;
use chemcost_core::report::Table;

fn main() {
    let cfg = if quick_mode() {
        ActiveConfig {
            n_initial: 50,
            query_size: 50,
            n_queries: 5,
            seed: 1,
            gb_shape: (80, 5, 0.1),
        }
    } else {
        ActiveConfig {
            n_initial: 50,
            query_size: 50,
            n_queries: 20,
            seed: 1,
            gb_shape: (150, 6, 0.1),
        }
    };
    for machine in machines_from_args() {
        let md = load_machine_data(&machine);
        let mut t = Table::new(
            &format!("Extended active-learning comparison for {}", machine.name),
            &["Strategy", "n_labeled", "R2", "MAPE", "MAE"],
        );
        for strategy in Strategy::all_extended() {
            println!("{}: running {strategy} …", machine.name);
            let run = active_learning_run(&md, strategy, None, &cfg);
            for r in &run.rounds {
                t.push_row(vec![
                    strategy.abbrev().to_string(),
                    r.n_labeled.to_string(),
                    f3(r.pool.r2),
                    f3(r.pool.mape),
                    s2(r.pool.mae),
                ]);
            }
            match run.samples_to_mape(0.2) {
                Some(n) => println!(
                    "  {strategy}: MAPE ≤ 0.2 with {n} experiments ({:.0}% of corpus)",
                    100.0 * n as f64 / md.samples.len() as f64
                ),
                None => println!("  {strategy}: MAPE ≤ 0.2 not reached"),
            }
        }
        emit(&t, &format!("{}_fig_active_extended", machine.name));
    }
}
