//! Shared plumbing for the `exp_*` experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md`'s experiment index): it prints the artifact as an aligned
//! text table and writes a CSV next to it under `results/`.

use chemcost_core::data::MachineData;
use chemcost_core::report::Table;
use chemcost_sim::machine::{aurora, frontier, MachineModel};
use std::path::PathBuf;

/// Parse `--machine aurora|frontier` (default: both) from argv.
pub fn machines_from_args() -> Vec<MachineModel> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--machine") {
        let name = args.get(pos + 1).map(String::as_str).unwrap_or("");
        match chemcost_sim::machine::by_name(name) {
            Some(m) => return vec![m],
            None => {
                eprintln!("unknown machine {name:?}; expected aurora or frontier");
                std::process::exit(2);
            }
        }
    }
    vec![aurora(), frontier()]
}

/// `--quick` shrinks experiment budgets for smoke runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The master seed every experiment shares (reproducibility).
pub const SEED: u64 = 42;

/// Generate (or shrink, under `--quick`) a machine's corpus.
pub fn load_machine_data(machine: &MachineModel) -> MachineData {
    if quick_mode() {
        MachineData::generate_sized(machine, 600, SEED)
    } else {
        MachineData::generate(machine, SEED)
    }
}

/// Repo-level `results/` directory.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CHEMCOST_RESULTS").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Print a table and persist it as `results/<stem>.csv`.
pub fn emit(table: &Table, stem: &str) {
    println!("{}", table.render());
    let path = results_dir().join(format!("{stem}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[written {}]\n", path.display()),
        Err(e) => eprintln!("[could not write {}: {e}]", path.display()),
    }
}

/// Format a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format seconds with two decimals.
pub fn s2(v: f64) -> String {
    format!("{v:.2}")
}
