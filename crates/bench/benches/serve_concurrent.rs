//! Tail latency of the event-driven data plane under concurrent
//! keep-alive load: a real `Server` on loopback, N client threads each
//! holding one persistent connection and issuing sequential
//! `/v1/predict` requests. Unlike `serve_throughput` (in-process router
//! medians), this measures what an operator sees — socket, parser,
//! micro-batcher, worker pool and encoder together — and reports the
//! p99 per-request latency via `iter_custom`, so the recorded entry
//! `serve_concurrent/p99/conns/N` IS the tail. CI gates these entries
//! with `bench_compare --tail-threshold`.

use chemcost_core::data::{MachineData, Target};
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_serve::{ModelRegistry, Router, Server};
use chemcost_sim::machine::aurora;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Sequential requests each client sends per measurement.
const REQUESTS_PER_CONN: usize = 25;

fn trained_model() -> GradientBoosting {
    let md = MachineData::generate_sized(&aurora(), 400, 42);
    let train = md.train_dataset(Target::Seconds);
    let mut gb = GradientBoosting::new(100, 6, 0.1);
    gb.seed = 42;
    gb.fit(&train.x, &train.y).unwrap();
    gb
}

/// A fresh router per server: `Router::clone` shares lifecycle state
/// (including the shutdown flag), so a router that already drained one
/// server would start the next one draining too.
fn router_with(gb: &GradientBoosting) -> Router {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("gb", "aurora", gb.clone());
    Router::new(registry)
}

const PREDICT: &str = r#"{"rows": [{"o": 100, "v": 800, "nodes": 32, "tile": 24}]}"#;

fn request_bytes(close: bool) -> Vec<u8> {
    format!(
        "POST /v1/predict HTTP/1.1\r\nHost: bench\r\nContent-Length: {}{}\r\n\r\n{PREDICT}",
        PREDICT.len(),
        if close { "\r\nConnection: close" } else { "" },
    )
    .into_bytes()
}

/// Read one Content-Length-framed response; panics on a non-200.
fn read_response(stream: &mut TcpStream, carry: &mut Vec<u8>) {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "EOF before response head");
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&carry[..head_end]).expect("UTF-8 head");
    assert!(head.starts_with("HTTP/1.1 200"), "non-200 under load: {head:?}");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length");
    while carry.len() < head_end + length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "EOF mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    carry.drain(..head_end + length);
}

/// One measurement: `conns` keep-alive clients fire in lockstep, each
/// timing every request round-trip. Returns the p99 across all of them.
fn measure_p99(addr: SocketAddr, conns: usize) -> Duration {
    let barrier = Arc::new(Barrier::new(conns));
    let clients: Vec<_> = (0..conns)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut carry = Vec::new();
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CONN);
                barrier.wait();
                for n in 0..REQUESTS_PER_CONN {
                    let start = Instant::now();
                    stream.write_all(&request_bytes(n + 1 == REQUESTS_PER_CONN)).unwrap();
                    read_response(&mut stream, &mut carry);
                    latencies.push(start.elapsed());
                }
                latencies
            })
        })
        .collect();
    let mut all: Vec<Duration> =
        clients.into_iter().flat_map(|c| c.join().expect("client thread")).collect();
    all.sort_unstable();
    all[(all.len() * 99) / 100 - 1]
}

fn bench_serve_concurrent(c: &mut Criterion) {
    let gb = trained_model();
    let mut group = c.benchmark_group("serve_concurrent");
    group.sample_size(5);
    for conns in [4usize, 32] {
        // A fresh server per concurrency level: the queue is sized so
        // tail latency reflects waiting, never 503 sheds.
        let server = Server::bind("127.0.0.1:0", router_with(&gb), 4)
            .expect("bind ephemeral")
            .with_queue_cap(2 * conns.max(4));
        let addr = server.local_addr().unwrap();
        let server_thread = std::thread::spawn(move || server.run());

        group.bench_function(BenchmarkId::new("p99/conns", conns), |b| {
            b.iter_custom(|iters| {
                let mut worst = Duration::ZERO;
                for _ in 0..iters {
                    worst = worst.max(measure_p99(addr, conns));
                }
                // p99 per request, scaled by iters so the harness's
                // per-iteration division reports the p99 itself.
                worst * iters as u32
            })
        });

        let mut stream = TcpStream::connect(addr).expect("connect for shutdown");
        stream
            .write_all(b"POST /v1/shutdown HTTP/1.1\r\nHost: bench\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut bye = Vec::new();
        stream.read_to_end(&mut bye).expect("shutdown response");
        server_thread.join().expect("server thread").expect("clean shutdown");
    }
    group.finish();
}

criterion_group!(benches, bench_serve_concurrent);
criterion_main!(benches);
