//! Requests/second through the advisor service's router, measured
//! in-process (no sockets): `Router::handle` is the same code path the
//! TCP server runs per request, so this isolates JSON parsing, registry
//! lookup, model inference and response encoding from kernel networking.

use chemcost_core::data::{MachineData, Target};
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_serve::http::Request;
use chemcost_serve::{ModelRegistry, Router};
use chemcost_sim::machine::aurora;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn router_with_model() -> Router {
    let md = MachineData::generate_sized(&aurora(), 400, 42);
    let train = md.train_dataset(Target::Seconds);
    let mut gb = GradientBoosting::new(100, 6, 0.1);
    gb.seed = 42;
    gb.fit(&train.x, &train.y).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("gb", "aurora", gb);
    Router::new(registry)
}

/// A predict body with `n` distinct rows.
fn predict_body(n: usize) -> String {
    let rows: Vec<String> = (0..n)
        .map(|i| {
            format!(
                r#"{{"o": {}, "v": {}, "nodes": {}, "tile": {}}}"#,
                60 + i % 80,
                500 + (i * 13) % 600,
                1 << (i % 8),
                16 + (i % 4) * 8
            )
        })
        .collect();
    format!(r#"{{"rows": [{}]}}"#, rows.join(","))
}

fn bench_serve(c: &mut Criterion) {
    let router = router_with_model();

    let mut group = c.benchmark_group("serve_predict");
    for batch in [1usize, 16, 256] {
        let req = Request::new("POST", "/v1/predict", predict_body(batch).as_bytes());
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("batch", batch), &req, |b, req| {
            b.iter(|| {
                let resp = router.handle(black_box(req));
                assert_eq!(resp.status, 200);
                black_box(resp.body.len())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("serve_advise");
    for goal in ["stq", "bq", "pareto"] {
        let body = format!(r#"{{"o": 120, "v": 900, "goal": "{goal}"}}"#);
        let req = Request::new("POST", "/v1/advise", body.as_bytes());
        group.bench_with_input(BenchmarkId::new("goal", goal), &req, |b, req| {
            b.iter(|| {
                let resp = router.handle(black_box(req));
                assert_eq!(resp.status, 200);
                black_box(resp.body.len())
            })
        });
    }
    group.finish();

    // Overhead floor: routing + metrics with no model work at all.
    let health = Request::new("GET", "/healthz", b"");
    c.bench_function("serve_healthz", |b| {
        b.iter(|| black_box(router.handle(black_box(&health))).status)
    });
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
