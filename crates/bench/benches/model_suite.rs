//! Fit/predict throughput for each of the nine model families on a
//! matched simulator corpus — the cost side of Figures 1–2.

use chemcost_core::data::{MachineData, Target};
use chemcost_ml::model_selection::Params;
use chemcost_ml::zoo::ModelKind;
use chemcost_sim::machine::aurora;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let md = MachineData::generate_sized(&aurora(), 600, 42);
    let train = md.train_dataset(Target::Seconds);
    let test = md.test_dataset(Target::Seconds);

    let mut group = c.benchmark_group("model_fit");
    group.sample_size(10);
    for kind in ModelKind::all() {
        group.bench_function(kind.abbrev(), |b| {
            b.iter(|| {
                let mut m = kind.build(&Params::new());
                m.fit(black_box(&train.x), black_box(&train.y)).unwrap();
                black_box(m.predict(&test.x))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
