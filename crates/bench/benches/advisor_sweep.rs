//! The PR's headline benchmark: advisor candidate-sweep inference,
//! recursive vs. flat (struct-of-arrays) vs. flat batched.
//!
//! Four inference strategies over the same fitted ensemble and the same
//! ~465-row candidate matrix the advisor sweeps per question:
//!
//! * `recursive_per_row` — the naive path: `predict_one` per candidate,
//!   pointer-chasing `Node` enums for every tree.
//! * `recursive_batched` — `GradientBoosting::predict` over the matrix
//!   (per-tree recursion, batched outer loop).
//! * `flat_per_row` — `FlatGbt::predict_row` per candidate: iterative
//!   traversal over the contiguous node arrays.
//! * `flat_batched` — `FlatGbt::predict_batch`: the serving hot path,
//!   rows parallelised over the worker pool. Target: ≥5× over
//!   `recursive_batched`.
//!
//! Plus an end-to-end group timing `Advisor::answer` (which now sweeps
//! once through whatever `Regressor` it wraps) with the recursive vs.
//! the flat model behind it.

use chemcost_core::advisor::{Advisor, Goal};
use chemcost_core::data::{MachineData, Target};
use chemcost_linalg::Matrix;
use chemcost_ml::flat::{FlatGbt, QUANT_REL_TOL};
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_sim::datagen::{node_candidates, tile_candidates};
use chemcost_sim::machine::aurora;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// The paper's deployed ensemble (750 estimators, depth 10) fitted on the
/// Aurora training split.
fn fitted_model() -> GradientBoosting {
    let md = MachineData::generate_sized(&aurora(), 1200, 42);
    let train = md.train_dataset(Target::Seconds);
    let mut gb = GradientBoosting::paper_config();
    gb.fit(&train.x, &train.y).unwrap();
    gb
}

/// The full (nodes, tile) candidate grid at a fixed water-cluster-sized
/// problem — the exact matrix `Advisor::sweep` builds.
fn candidate_matrix(o: usize, v: usize) -> Matrix {
    let mut x = Matrix::zeros(0, 4);
    for nodes in node_candidates() {
        for tile in tile_candidates() {
            x.push_row(&[o as f64, v as f64, nodes as f64, tile as f64]);
        }
    }
    x
}

fn bench_sweep_inference(c: &mut Criterion) {
    let gb = fitted_model();
    let flat = FlatGbt::compile(&gb);
    let x = candidate_matrix(116, 840);
    let n_rows = x.nrows();

    // Sanity before timing: the exact flat path must agree bit-for-bit
    // with the recursive model, and the quantized default must sit inside
    // the documented tolerance (the candidate grid is all small integers,
    // so routing is identical and only leaf rounding differs).
    let exact = gb.predict(&x);
    assert_eq!(flat.predict_batch_exact(&x), exact);
    for (q, e) in flat.predict_batch(&x).iter().zip(&exact) {
        assert!((q - e).abs() <= QUANT_REL_TOL * (1.0 + e.abs()));
    }

    let mut group = c.benchmark_group("advisor_sweep_inference");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_rows as u64));
    group.bench_function("recursive_per_row", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..n_rows {
                acc += gb.predict_one(black_box(x.row(i)));
            }
            black_box(acc)
        })
    });
    group.bench_function("recursive_batched", |b| b.iter(|| black_box(gb.predict(black_box(&x)))));
    group.bench_function("flat_per_row", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..n_rows {
                acc += flat.predict_row(black_box(x.row(i)));
            }
            black_box(acc)
        })
    });
    group.bench_function("flat_batched", |b| {
        b.iter(|| black_box(flat.predict_batch(black_box(&x))))
    });
    group.finish();
}

fn bench_advisor_end_to_end(c: &mut Criterion) {
    let machine = aurora();
    let gb = fitted_model();
    let flat = FlatGbt::compile(&gb);
    let recursive_advisor = Advisor::new(&gb, machine.clone());
    let flat_advisor = Advisor::new(&flat, machine);

    // Same recommendation, or the comparison is meaningless. The flat
    // advisor runs the quantized path: the integer candidate grid routes
    // identically, so nodes/tile must match exactly and the predicted
    // seconds agree within the quantization tolerance.
    let r = recursive_advisor.answer(116, 840, Goal::ShortestTime).unwrap();
    let f = flat_advisor.answer(116, 840, Goal::ShortestTime).unwrap();
    assert_eq!((r.nodes, r.tile), (f.nodes, f.tile));
    assert!(
        (r.predicted_seconds - f.predicted_seconds).abs()
            <= QUANT_REL_TOL * (1.0 + r.predicted_seconds.abs())
    );

    let mut group = c.benchmark_group("advisor_answer_stq");
    group.sample_size(10);
    group.bench_function("recursive_model", |b| {
        b.iter(|| {
            black_box(recursive_advisor.answer(black_box(116), black_box(840), Goal::ShortestTime))
        })
    });
    group.bench_function("flat_model", |b| {
        b.iter(|| {
            black_box(flat_advisor.answer(black_box(116), black_box(840), Goal::ShortestTime))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_inference, bench_advisor_end_to_end);
criterion_main!(benches);
