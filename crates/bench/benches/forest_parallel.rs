//! Ablation: random-forest fitting with one worker thread vs. all cores
//! (the dynamic `par_map` scheduler in `chemcost-linalg::parallel`).

use chemcost_core::data::{MachineData, Target};
use chemcost_ml::forest::RandomForest;
use chemcost_ml::Regressor;
use chemcost_sim::machine::aurora;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_forest(c: &mut Criterion) {
    let md = MachineData::generate_sized(&aurora(), 800, 42);
    let train = md.train_dataset(Target::Seconds);

    let mut group = c.benchmark_group("forest_fit_100_trees");
    group.sample_size(10);
    for (label, threads) in [("1_thread", 1usize), ("all_cores", 0usize)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rf = RandomForest::new(100, 12);
                rf.n_threads = threads;
                rf.seed = 7;
                rf.fit(black_box(&train.x), black_box(&train.y)).unwrap();
                black_box(rf.trees().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
