//! Ablation: sequential blocked GEMM vs. the scoped-thread parallel
//! kernel, across sizes.

use chemcost_linalg::{gemm, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 101) as f64 * 0.01);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 29) % 97) as f64 * 0.01);
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |bch, _| {
            bch.iter(|| black_box(gemm::matmul(black_box(&a), black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bch, _| {
            bch.iter(|| black_box(gemm::matmul_parallel(black_box(&a), black_box(&b))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
