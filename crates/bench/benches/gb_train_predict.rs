//! Criterion counterpart of **Table 2**: wall time to train and to predict
//! with the deployed Gradient Boosting configuration (750 estimators,
//! depth 10) on the full Aurora corpus.

use chemcost_core::data::{MachineData, Target};
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_sim::machine::aurora;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_gb(c: &mut Criterion) {
    let md = MachineData::generate(&aurora(), 42);
    let train = md.train_dataset(Target::Seconds);
    let test = md.test_dataset(Target::Seconds);

    let mut group = c.benchmark_group("gb_table2");
    group.sample_size(10);
    group.bench_function("train_750x10", |b| {
        b.iter(|| {
            let mut gb = GradientBoosting::paper_config();
            gb.fit(black_box(&train.x), black_box(&train.y)).unwrap();
            black_box(gb.n_stages())
        })
    });

    let mut fitted = GradientBoosting::paper_config();
    fitted.fit(&train.x, &train.y).unwrap();
    group.bench_function("predict_test_split", |b| {
        b.iter(|| black_box(fitted.predict(black_box(&test.x))))
    });
    group.finish();
}

criterion_group!(benches, bench_gb);
criterion_main!(benches);
