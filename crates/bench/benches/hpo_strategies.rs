//! Ablation: the cost of the three hyper-parameter search strategies at a
//! matched evaluation budget (the "opt time" panels of Figures 1–2).

use chemcost_core::data::{MachineData, Target};
use chemcost_ml::model_selection::{
    BayesSearch, Dimension, GridSearch, KFold, RandomSearch, Scale, Scoring,
};
use chemcost_ml::tree::DecisionTree;
use chemcost_ml::Regressor;
use chemcost_sim::machine::aurora;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_hpo(c: &mut Criterion) {
    let md = MachineData::generate_sized(&aurora(), 400, 42);
    let data = md.train_dataset(Target::Seconds);
    let cv = KFold::new(3);
    let factory = |p: &chemcost_ml::model_selection::Params| {
        let depth = p.get("max_depth").copied().unwrap_or(8.0) as usize;
        Box::new(DecisionTree::new(depth)) as Box<dyn Regressor>
    };

    let mut group = c.benchmark_group("hpo_dt_12_candidates");
    group.sample_size(10);
    group.bench_function("grid", |b| {
        b.iter(|| {
            let gs = GridSearch::new(vec![("max_depth", (2..14).map(|d| d as f64).collect())], cv);
            black_box(gs.search(factory, black_box(&data)).best_cv_loss)
        })
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            let rs = RandomSearch {
                space: vec![Dimension::new("max_depth", 2.0, 14.0, Scale::Integer)],
                n_iter: 12,
                seed: 3,
                cv,
                scoring: Scoring::Mse,
            };
            black_box(rs.search(factory, black_box(&data)).best_cv_loss)
        })
    });
    group.bench_function("bayes", |b| {
        b.iter(|| {
            let bs = BayesSearch {
                space: vec![Dimension::new("max_depth", 2.0, 14.0, Scale::Integer)],
                n_iter: 12,
                n_initial: 4,
                seed: 3,
                cv,
                scoring: Scoring::Mse,
            };
            black_box(bs.search(factory, black_box(&data)).best_cv_loss)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hpo);
criterion_main!(benches);
