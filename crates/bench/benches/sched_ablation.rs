//! Ablation: LPT class scheduling vs. naive round-robin placement — both
//! the scheduler's own runtime and (printed once) the makespan quality gap
//! that motivates LPT in the simulator.

use chemcost_sim::ccsd::{iteration_task_classes, Problem};
use chemcost_sim::machine::aurora;
use chemcost_sim::schedule::{lpt_classes, round_robin_classes};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sched(c: &mut Criterion) {
    let machine = aurora();
    let cases = [
        ("small", Problem::new(44, 260), 40, 60usize),
        ("medium", Problem::new(116, 840), 60, 3600),
        ("large", Problem::new(280, 1040), 90, 10800),
    ];

    // One-time quality report: how much makespan does LPT save?
    for (label, p, tile, execs) in &cases {
        let classes = iteration_task_classes(p, *tile);
        let cost = |c: &chemcost_sim::TaskClass| c.flops / machine.effective_flops(c.min_gemm_dim);
        let lpt = lpt_classes(&classes, *execs, cost);
        let rr = round_robin_classes(&classes, *execs, cost);
        println!(
            "[quality] {label}: LPT makespan {:.3}s (imb {:.3}) vs round-robin {:.3}s (imb {:.3})",
            lpt.makespan, lpt.imbalance, rr.makespan, rr.imbalance
        );
    }

    let mut group = c.benchmark_group("scheduler");
    for (label, p, tile, execs) in &cases {
        let classes = iteration_task_classes(p, *tile);
        group.bench_with_input(BenchmarkId::new("lpt", label), &classes, |b, cl| {
            b.iter(|| {
                black_box(lpt_classes(black_box(cl), *execs, |c| {
                    c.flops / machine.effective_flops(c.min_gemm_dim)
                }))
            })
        });
        group.bench_with_input(BenchmarkId::new("round_robin", label), &classes, |b, cl| {
            b.iter(|| {
                black_box(round_robin_classes(black_box(cl), *execs, |c| {
                    c.flops / machine.effective_flops(c.min_gemm_dim)
                }))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
