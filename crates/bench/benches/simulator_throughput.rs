//! Simulator throughput: time to evaluate one CCSD-iteration configuration
//! and to regenerate a corpus. The class-grouped LPT scheduler is what
//! keeps these costs flat in the executor count.

use chemcost_sim::ccsd::Problem;
use chemcost_sim::datagen::generate_dataset_sized;
use chemcost_sim::machine::{aurora, frontier};
use chemcost_sim::simulate::{simulate_iteration_clean, Config};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let machine = aurora();
    let mut group = c.benchmark_group("simulate_iteration");
    let cases = [
        ("small_5n", Problem::new(44, 260), Config::new(5, 40)),
        ("medium_300n", Problem::new(134, 951), Config::new(300, 70)),
        ("large_900n", Problem::new(280, 1040), Config::new(900, 120)),
    ];
    for (label, p, cfg) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(label), &(p, cfg), |b, (p, cfg)| {
            b.iter(|| black_box(simulate_iteration_clean(black_box(p), cfg, &machine)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("generate_corpus");
    group.sample_size(10);
    group.bench_function("frontier_500_samples", |b| {
        b.iter(|| black_box(generate_dataset_sized(&frontier(), 500, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
