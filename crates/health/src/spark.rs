//! ASCII sparklines for the `chemcost health` CLI. Pure ASCII so the
//! output survives any terminal, log file, or CI artifact viewer.

/// Density ramp, low to high.
const RAMP: &[u8] = b" .:-=+*#@";

/// Render `values` as a fixed-`width` ASCII sparkline. Values are
/// resampled by bucketing (max within each bucket — spikes must stay
/// visible) and scaled to the min..max of the finite values. NaN-only
/// input (or an empty slice) renders as spaces.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if width == 0 {
        return String::new();
    }
    if values.is_empty() {
        return " ".repeat(width);
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return " ".repeat(width);
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::EPSILON);
    let mut out = String::with_capacity(width);
    for i in 0..width {
        // Bucket of source indices feeding output column i.
        let start = i * values.len() / width;
        let end = (((i + 1) * values.len()).div_ceil(width)).min(values.len());
        let bucket = &values[start..end.max(start + 1).min(values.len())];
        let peak = bucket.iter().copied().filter(|v| v.is_finite()).fold(f64::NAN, f64::max);
        if peak.is_nan() {
            out.push(' ');
        } else {
            let norm = ((peak - lo) / span).clamp(0.0, 1.0);
            let idx = (norm * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx] as char);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_from_low_to_high() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with(' ') || s.starts_with('.'));
        assert!(s.ends_with('@'));
    }

    #[test]
    fn flat_series_is_uniform() {
        let s = sparkline(&[5.0; 8], 8);
        assert_eq!(s.len(), 8);
        let first = s.chars().next().unwrap();
        assert!(s.chars().all(|c| c == first));
    }

    #[test]
    fn downsampling_keeps_the_spike() {
        let mut v = vec![0.0; 100];
        v[37] = 10.0;
        let s = sparkline(&v, 10);
        assert!(s.contains('@'), "spike lost in {s:?}");
    }

    #[test]
    fn upsampling_pads_to_width() {
        let s = sparkline(&[1.0, 2.0], 8);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn nan_and_empty_render_blank() {
        assert_eq!(sparkline(&[], 4), "    ");
        assert_eq!(sparkline(&[f64::NAN, f64::NAN], 4), "    ");
        assert_eq!(sparkline(&[1.0], 0), "");
    }
}
