//! Declarative SLOs evaluated as fast/slow burn-rate window pairs.
//!
//! Each objective names a signal (a quantile, ratio, rate, delta, or
//! gauge/value maximum), a threshold, and two lookback windows. An
//! evaluation breaches only when *both* windows breach — the classic
//! multi-window multi-burn shape: the fast window makes alerts prompt,
//! the slow window keeps one spiky scrape from paging anyone.

use std::collections::VecDeque;
use std::time::Duration;

use crate::alert::{AlertMachine, AlertState, Transition};
use crate::schema::{Sample, Schema};
use crate::window::WindowView;

/// Evaluation history retained per SLO (for `/debug/slo` sparklines).
const HISTORY_CAP: usize = 240;

/// What to measure over a window.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// `q`-quantile (0..1) of histogram `hist` over the window, in
    /// seconds.
    Quantile {
        /// Histogram series name.
        hist: String,
        /// Quantile in (0, 1], e.g. 0.99.
        q: f64,
    },
    /// Delta-over-delta ratio of counter prefixes; zero denominator
    /// reads as 0.0 (idle = healthy).
    Ratio {
        /// Numerator counter name prefixes (summed).
        num: Vec<String>,
        /// Denominator counter name prefixes (summed).
        den: Vec<String>,
    },
    /// Summed per-second rate of counter prefixes over the window.
    Rate {
        /// Counter name prefixes (summed).
        counters: Vec<String>,
    },
    /// Summed raw increase of counters matching `prefix` over the
    /// window (e.g. drift-latch trips).
    DeltaPrefix {
        /// Counter name prefix.
        prefix: String,
    },
    /// Maximum latest-sample value over float series matching
    /// `prefix` (e.g. per-group MAPE), NaN entries skipped.
    ValueMax {
        /// Float series name prefix.
        prefix: String,
    },
    /// Maximum latest-sample value over gauges matching `prefix`.
    GaugeMax {
        /// Gauge name prefix.
        prefix: String,
    },
}

impl Signal {
    fn measure(&self, w: &WindowView<'_>) -> Option<f64> {
        match self {
            Signal::Quantile { hist, q } => w.quantile(hist, *q),
            Signal::Ratio { num, den } => w.ratio(num, den),
            Signal::Rate { counters } => {
                let span = w.span_seconds();
                if span <= 0.0 {
                    return None;
                }
                let mut total = 0u64;
                let mut matched = false;
                for c in counters {
                    if let Some(d) = w.counter_delta_prefix(c) {
                        matched = true;
                        total += d;
                    }
                }
                if matched {
                    Some(total as f64 / span)
                } else {
                    None
                }
            }
            Signal::DeltaPrefix { prefix } => w.counter_delta_prefix(prefix).map(|d| d as f64),
            Signal::ValueMax { prefix } => w.value_max_prefix(prefix),
            Signal::GaugeMax { prefix } => w.gauge_max_prefix(prefix).map(|g| g as f64),
        }
    }
}

/// Which side of the threshold is unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Breach when value > threshold (latency, error ratio, ...).
    Above,
    /// Breach when value < threshold (e.g. throughput floors).
    Below,
}

impl Cmp {
    /// Stable label for JSON (`">"` / `"<"`).
    pub fn label(self) -> &'static str {
        match self {
            Cmp::Above => ">",
            Cmp::Below => "<",
        }
    }
}

/// One declarative objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Unique name, e.g. `advise_p99_latency`.
    pub name: String,
    /// What to measure.
    pub signal: Signal,
    /// Threshold the signal is compared against.
    pub threshold: f64,
    /// Direction of unhealthy.
    pub cmp: Cmp,
    /// Fast burn window (prompt detection).
    pub fast_window: Duration,
    /// Slow burn window (spike suppression). Both must breach.
    pub slow_window: Duration,
    /// Consecutive breaching evaluations before pending → firing.
    pub pending_evals: u32,
    /// Consecutive healthy evaluations before firing → resolved (and
    /// pending/resolved → ok).
    pub clear_evals: u32,
    /// Critical SLOs flip `/v1/health` to 503 while firing.
    pub critical: bool,
}

impl SloSpec {
    /// A spec with conventional defaults: breach above, 60 s fast /
    /// 300 s slow windows, fire after 2 breaches, clear after 3 OKs,
    /// non-critical.
    pub fn new(name: impl Into<String>, signal: Signal, threshold: f64) -> Self {
        SloSpec {
            name: name.into(),
            signal,
            threshold,
            cmp: Cmp::Above,
            fast_window: Duration::from_secs(60),
            slow_window: Duration::from_secs(300),
            pending_evals: 2,
            clear_evals: 3,
            critical: false,
        }
    }

    /// Mark the SLO critical (readiness-gating).
    pub fn critical(mut self) -> Self {
        self.critical = true;
        self
    }

    /// Override both burn windows.
    pub fn windows(mut self, fast: Duration, slow: Duration) -> Self {
        self.fast_window = fast;
        self.slow_window = slow;
        self
    }

    /// Override hysteresis streak lengths.
    pub fn hysteresis(mut self, pending_evals: u32, clear_evals: u32) -> Self {
        self.pending_evals = pending_evals;
        self.clear_evals = clear_evals;
        self
    }

    /// Breach below the threshold instead of above.
    pub fn below(mut self) -> Self {
        self.cmp = Cmp::Below;
        self
    }

    fn breaches(&self, value: f64) -> bool {
        match self.cmp {
            Cmp::Above => value > self.threshold,
            Cmp::Below => value < self.threshold,
        }
    }
}

/// One evaluation's outcome, kept in per-SLO history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalPoint {
    /// When the evaluation ran (microseconds since epoch).
    pub unix_us: u64,
    /// Fast-window signal value (NaN when the signal had no data).
    pub value: f64,
    /// Whether both windows breached.
    pub breaching: bool,
}

/// Evaluates a set of [`SloSpec`]s against ring history and drives one
/// [`AlertMachine`] per spec.
pub struct SloEngine {
    specs: Vec<SloSpec>,
    machines: Vec<AlertMachine>,
    history: Vec<VecDeque<EvalPoint>>,
    evaluations: u64,
    /// Last fast-window value per spec (NaN = no data).
    last_values: Vec<f64>,
    /// Last slow-window value per spec (NaN = no data).
    last_slow_values: Vec<f64>,
}

impl SloEngine {
    /// Build an engine; every machine starts in [`AlertState::Ok`].
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let machines =
            specs.iter().map(|s| AlertMachine::new(s.pending_evals, s.clear_evals)).collect();
        let n = specs.len();
        SloEngine {
            specs,
            machines,
            history: (0..n).map(|_| VecDeque::new()).collect(),
            evaluations: 0,
            last_values: vec![f64::NAN; n],
            last_slow_values: vec![f64::NAN; n],
        }
    }

    /// The configured objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Total evaluations run (specs × ingests).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Current alert state of spec `i`.
    pub fn state(&self, i: usize) -> AlertState {
        self.machines[i].state()
    }

    /// When spec `i` entered its current state.
    pub fn since_us(&self, i: usize) -> u64 {
        self.machines[i].since_us()
    }

    /// Last fast-window value of spec `i` (NaN = no data).
    pub fn last_value(&self, i: usize) -> f64 {
        self.last_values[i]
    }

    /// Last slow-window value of spec `i` (NaN = no data).
    pub fn last_slow_value(&self, i: usize) -> f64 {
        self.last_slow_values[i]
    }

    /// Evaluation history of spec `i`, oldest first.
    pub fn history(&self, i: usize) -> impl Iterator<Item = &EvalPoint> {
        self.history[i].iter()
    }

    /// Number of specs currently breaching (last evaluation).
    pub fn breaching_count(&self) -> u64 {
        self.history.iter().filter(|h| h.back().is_some_and(|p| p.breaching)).count() as u64
    }

    /// Evaluate every spec against `samples` (chronological, must end
    /// at the just-ingested sample). Returns the transitions taken.
    pub fn evaluate(&mut self, schema: &Schema, samples: &[Sample]) -> Vec<Transition> {
        let mut transitions = Vec::new();
        let Some(now_us) = samples.last().map(|s| s.unix_us) else {
            return transitions;
        };
        for (i, spec) in self.specs.iter().enumerate() {
            self.evaluations += 1;
            let fast = window_slice(samples, now_us, spec.fast_window);
            let slow = window_slice(samples, now_us, spec.slow_window);
            let fast_value = spec.signal.measure(&WindowView::new(schema, fast));
            let slow_value = spec.signal.measure(&WindowView::new(schema, slow));
            // No data in either window => not breaching: never alert
            // on absence of evidence.
            let breaching = match (fast_value, slow_value) {
                (Some(f), Some(s)) => spec.breaches(f) && spec.breaches(s),
                _ => false,
            };
            let value = fast_value.unwrap_or(f64::NAN);
            self.last_values[i] = value;
            self.last_slow_values[i] = slow_value.unwrap_or(f64::NAN);
            let hist = &mut self.history[i];
            if hist.len() == HISTORY_CAP {
                hist.pop_front();
            }
            hist.push_back(EvalPoint { unix_us: now_us, value, breaching });
            if let Some((from, to)) = self.machines[i].step(breaching, now_us) {
                transitions.push(Transition {
                    slo: spec.name.clone(),
                    from,
                    to,
                    unix_us: now_us,
                    value,
                    threshold: spec.threshold,
                    critical: spec.critical,
                });
            }
        }
        transitions
    }
}

/// Trailing slice of `samples` covering `window` ending at `now_us`.
fn window_slice(samples: &[Sample], now_us: u64, window: Duration) -> &[Sample] {
    let cutoff = now_us.saturating_sub(window.as_micros() as u64);
    let start = samples.partition_point(|s| s.unix_us < cutoff);
    &samples[start..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema {
            counters: vec!["requests.advise".into(), "errors.advise".into(), "shed".into()],
            ..Schema::default()
        }
    }

    fn sample(t_s: u64, requests: u64, errors: u64) -> Sample {
        Sample {
            unix_us: t_s * 1_000_000,
            counters: vec![requests, errors, 0],
            ..Sample::default()
        }
    }

    fn error_ratio_spec() -> SloSpec {
        SloSpec::new(
            "error_ratio",
            Signal::Ratio { num: vec!["errors.".into()], den: vec!["requests.".into()] },
            0.05,
        )
        .windows(Duration::from_secs(10), Duration::from_secs(30))
        .hysteresis(2, 2)
        .critical()
    }

    #[test]
    fn both_windows_must_breach() {
        let schema = schema();
        let mut engine = SloEngine::new(vec![error_ratio_spec()]);
        // 40 s of clean traffic, then errors start. The fast (10 s)
        // window breaches quickly; the slow (30 s) window still holds
        // enough clean history to stay under threshold at first.
        let mut samples = Vec::new();
        for t in 0..40u64 {
            samples.push(sample(t, t * 100, 0));
            engine.evaluate(&schema, &samples);
        }
        assert_eq!(engine.state(0), AlertState::Ok);
        // Errors at 50% of new traffic.
        let mut fired_at = None;
        for t in 40..80u64 {
            let req = t * 100;
            let err = (t - 39) * 50;
            samples.push(sample(t, req, err));
            engine.evaluate(&schema, &samples);
            if engine.state(0) == AlertState::Firing && fired_at.is_none() {
                fired_at = Some(t);
            }
        }
        let fired_at = fired_at.expect("sustained breach should fire");
        // The fast window alone breaches at ~t=41; both-windows gating
        // plus hysteresis delays it, but not indefinitely.
        assert!(fired_at > 41, "fired too eagerly at t={fired_at}");
        assert_eq!(engine.state(0), AlertState::Firing);
        // Traffic stops entirely: ratio reads 0.0 (idle = healthy) and
        // the alert resolves after clear_evals.
        let last_req = 79 * 100;
        let last_err = 40 * 50;
        for t in 80..120u64 {
            samples.push(sample(t, last_req, last_err));
            engine.evaluate(&schema, &samples);
        }
        assert!(
            matches!(engine.state(0), AlertState::Resolved | AlertState::Ok),
            "expected recovery, got {:?}",
            engine.state(0)
        );
    }

    #[test]
    fn missing_data_never_breaches() {
        let schema = schema();
        let spec = SloSpec::new("p99", Signal::Quantile { hist: "latency".into(), q: 0.99 }, 0.5);
        let mut engine = SloEngine::new(vec![spec]);
        let samples = vec![sample(0, 0, 0), sample(1, 10, 0)];
        let t = engine.evaluate(&schema, &samples);
        assert!(t.is_empty());
        assert_eq!(engine.state(0), AlertState::Ok);
        assert!(engine.last_value(0).is_nan());
    }

    #[test]
    fn transitions_carry_spec_metadata() {
        let schema = schema();
        let spec = error_ratio_spec().hysteresis(1, 1);
        let mut engine = SloEngine::new(vec![spec]);
        let samples = vec![sample(0, 100, 0), sample(1, 200, 90)];
        let t = engine.evaluate(&schema, &samples);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].slo, "error_ratio");
        assert_eq!(t[0].from, AlertState::Ok);
        assert_eq!(t[0].to, AlertState::Pending);
        assert!(t[0].critical);
        assert!((t[0].value - 0.9).abs() < 1e-12);
        assert_eq!(engine.breaching_count(), 1);
        assert_eq!(engine.evaluations(), 1);
    }

    #[test]
    fn history_is_bounded() {
        let schema = schema();
        let mut engine = SloEngine::new(vec![error_ratio_spec()]);
        let mut samples = Vec::new();
        for t in 0..(HISTORY_CAP as u64 + 50) {
            samples.push(sample(t, t, 0));
            engine.evaluate(&schema, &samples);
        }
        assert_eq!(engine.history(0).count(), HISTORY_CAP);
    }
}
