//! Minimal JSON emission helpers. The health surfaces hand-render
//! their JSON (this crate cannot depend on serve's parser), so the
//! two lossy spots — string escaping and non-finite floats — live
//! here, tested.

/// Escape a string for inclusion inside JSON double quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a float as a JSON value. JSON has no NaN/Infinity; those
/// become `null` (the health endpoints use NaN for "no data yet").
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        // Trim float noise: SLO values are human-read thresholds and
        // ratios, six significant decimals is plenty.
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() || s == "-" {
            "0".to_string()
        } else {
            s.to_string()
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(json_num(0.5), "0.5");
        assert_eq!(json_num(0.0), "0");
        assert_eq!(json_num(-2.0), "-2");
        assert_eq!(json_num(0.050000), "0.05");
        assert_eq!(json_num(1.0 / 3.0), "0.333333");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(f64::NEG_INFINITY), "null");
    }
}
