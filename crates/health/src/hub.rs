//! The hub ties ring + engine + observers behind one `ingest` call and
//! renders the `/v1/health` and `/debug/slo` JSON surfaces.

use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use crate::alert::{AlertState, Transition};
use crate::json::{json_escape, json_num};
use crate::ring::{Ring, RingStats};
use crate::schema::{Sample, Schema};
use crate::slo::{SloEngine, SloSpec};

/// Observer invoked on every alert transition (metrics, obs events).
pub type TransitionObserver = Box<dyn Fn(&Transition) + Send + Sync>;

/// Tunables for the health plane.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// How often the embedder samples its metric registry.
    pub scrape_interval: Duration,
    /// How much history the ring retains.
    pub retention: Duration,
    /// Byte budget for the ring's encoded history.
    pub max_bytes: usize,
    /// Objectives to evaluate on every ingest.
    pub slos: Vec<SloSpec>,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            scrape_interval: Duration::from_secs(1),
            retention: Duration::from_secs(900),
            max_bytes: 512 * 1024,
            slos: Vec::new(),
        }
    }
}

/// Overall health verdict, aggregated across SLOs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Worst alert state across all SLOs (severity: ok < resolved <
    /// pending < firing).
    pub worst: AlertState,
    /// True when any *critical* SLO is firing — the 503 condition.
    pub critical_firing: bool,
    /// SLOs currently firing.
    pub firing: usize,
    /// SLOs currently pending.
    pub pending: usize,
}

impl Verdict {
    /// HTTP status for a readiness probe: 503 only while a critical
    /// SLO is firing.
    pub fn http_status(&self) -> u16 {
        if self.critical_firing {
            503
        } else {
            200
        }
    }

    /// Stable overall label for JSON.
    pub fn label(&self) -> &'static str {
        match self.worst {
            AlertState::Firing => "firing",
            AlertState::Pending => "pending",
            AlertState::Resolved => "resolved",
            AlertState::Ok => "ok",
        }
    }
}

fn severity(state: AlertState) -> u8 {
    match state {
        AlertState::Ok => 0,
        AlertState::Resolved => 1,
        AlertState::Pending => 2,
        AlertState::Firing => 3,
    }
}

/// Point-in-time snapshot of one SLO, for rendering and for the CLI.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// SLO name.
    pub name: String,
    /// Current alert state.
    pub state: AlertState,
    /// Whether the SLO gates readiness.
    pub critical: bool,
    /// Last fast-window value (NaN = no data).
    pub value: f64,
    /// Last slow-window value (NaN = no data).
    pub value_slow: f64,
    /// Configured threshold.
    pub threshold: f64,
    /// Direction label (`">"` / `"<"`).
    pub cmp: &'static str,
    /// Fast window, seconds.
    pub fast_window_s: f64,
    /// Slow window, seconds.
    pub slow_window_s: f64,
    /// When the current state was entered (0 until first transition).
    pub since_us: u64,
}

/// The in-process health plane: ring store, SLO engine, transition
/// observers. Shared between the sampler thread and HTTP readers.
pub struct HealthHub {
    schema: Arc<Schema>,
    ring: Ring,
    engine: Mutex<SloEngine>,
    observers: RwLock<Vec<TransitionObserver>>,
    scrape_interval: Duration,
}

impl HealthHub {
    /// Build a hub for `schema` with the given config.
    pub fn new(schema: Arc<Schema>, config: &HealthConfig) -> Self {
        let ring =
            Ring::new(Arc::clone(&schema), config.max_bytes, config.retention.as_micros() as u64);
        HealthHub {
            schema,
            ring,
            engine: Mutex::new(SloEngine::new(config.slos.clone())),
            observers: RwLock::new(Vec::new()),
            scrape_interval: config.scrape_interval,
        }
    }

    /// The snapshot schema this hub ingests.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Configured scrape cadence (informational; the embedder drives
    /// the actual sampling loop).
    pub fn scrape_interval(&self) -> Duration {
        self.scrape_interval
    }

    /// Register a callback invoked (synchronously, on the ingest
    /// thread) for every alert transition.
    pub fn on_transition(&self, f: TransitionObserver) {
        self.observers.write().unwrap().push(f);
    }

    /// Store one sample, evaluate every SLO against the updated
    /// history, notify observers, and return the transitions taken.
    pub fn ingest(&self, sample: &Sample) -> Vec<Transition> {
        self.ring.push(sample);
        // The slowest SLO window bounds how much history evaluation
        // needs; replaying the whole ring is fine at ring sizes.
        let samples = self.ring.samples_since(0);
        let transitions = {
            let mut engine = self.engine.lock().unwrap();
            engine.evaluate(&self.schema, &samples)
        };
        if !transitions.is_empty() {
            let observers = self.observers.read().unwrap();
            for t in &transitions {
                for obs in observers.iter() {
                    obs(t);
                }
            }
        }
        transitions
    }

    /// Ring accounting.
    pub fn ring_stats(&self) -> RingStats {
        self.ring.stats()
    }

    /// Number of configured SLOs.
    pub fn slo_count(&self) -> usize {
        self.engine.lock().unwrap().specs().len()
    }

    /// SLOs breaching both burn windows on the latest evaluation.
    pub fn breaching_count(&self) -> u64 {
        self.engine.lock().unwrap().breaching_count()
    }

    /// Retained samples since `since_unix_us` (0 = all).
    pub fn samples_since(&self, since_unix_us: u64) -> Vec<Sample> {
        self.ring.samples_since(since_unix_us)
    }

    /// Aggregate verdict across all SLOs.
    pub fn verdict(&self) -> Verdict {
        let engine = self.engine.lock().unwrap();
        let mut worst = AlertState::Ok;
        let mut critical_firing = false;
        let mut firing = 0;
        let mut pending = 0;
        for (i, spec) in engine.specs().iter().enumerate() {
            let state = engine.state(i);
            if severity(state) > severity(worst) {
                worst = state;
            }
            match state {
                AlertState::Firing => {
                    firing += 1;
                    if spec.critical {
                        critical_firing = true;
                    }
                }
                AlertState::Pending => pending += 1,
                _ => {}
            }
        }
        Verdict { worst, critical_firing, firing, pending }
    }

    /// Per-SLO snapshots, in spec order.
    pub fn statuses(&self) -> Vec<SloStatus> {
        let engine = self.engine.lock().unwrap();
        engine
            .specs()
            .iter()
            .enumerate()
            .map(|(i, spec)| SloStatus {
                name: spec.name.clone(),
                state: engine.state(i),
                critical: spec.critical,
                value: engine.last_value(i),
                value_slow: engine.last_slow_value(i),
                threshold: spec.threshold,
                cmp: spec.cmp.label(),
                fast_window_s: spec.fast_window.as_secs_f64(),
                slow_window_s: spec.slow_window.as_secs_f64(),
                since_us: engine.since_us(i),
            })
            .collect()
    }

    /// Render the `/v1/health` body; returns `(http_status, json)`.
    pub fn health_json(&self) -> (u16, String) {
        let verdict = self.verdict();
        let stats = self.ring_stats();
        let evaluations = self.engine.lock().unwrap().evaluations();
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str(&format!("\"status\":\"{}\",", verdict.label()));
        out.push_str(&format!("\"critical_firing\":{},", verdict.critical_firing));
        out.push_str(&format!("\"firing\":{},", verdict.firing));
        out.push_str(&format!("\"pending\":{},", verdict.pending));
        out.push_str(&format!("\"scrape_interval_ms\":{},", self.scrape_interval.as_millis()));
        out.push_str(&format!("\"samples\":{},", stats.len));
        out.push_str(&format!("\"evaluations\":{},", evaluations));
        out.push_str("\"slos\":[");
        for (i, s) in self.statuses().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"name\":\"{}\",", json_escape(&s.name)));
            out.push_str(&format!("\"state\":\"{}\",", s.state.label()));
            out.push_str(&format!("\"critical\":{},", s.critical));
            out.push_str(&format!("\"value\":{},", json_num(s.value)));
            out.push_str(&format!("\"value_slow\":{},", json_num(s.value_slow)));
            out.push_str(&format!("\"threshold\":{},", json_num(s.threshold)));
            out.push_str(&format!("\"cmp\":\"{}\",", s.cmp));
            out.push_str(&format!("\"fast_window_s\":{},", json_num(s.fast_window_s)));
            out.push_str(&format!("\"slow_window_s\":{},", json_num(s.slow_window_s)));
            out.push_str(&format!("\"since_us\":{}", s.since_us));
            out.push('}');
        }
        out.push_str("]}");
        (verdict.http_status(), out)
    }

    /// Render the `/debug/slo` body: ring stats plus per-SLO
    /// evaluation history (value + breach flag per point) for
    /// sparklines.
    pub fn debug_json(&self) -> String {
        let stats = self.ring_stats();
        let engine = self.engine.lock().unwrap();
        let mut out = String::with_capacity(4096);
        out.push('{');
        out.push_str(&format!(
            "\"ring\":{{\"len\":{},\"bytes\":{},\"appended\":{},\"evicted\":{},\"span_us\":{}}},",
            stats.len, stats.bytes, stats.appended, stats.evicted, stats.span_us
        ));
        out.push_str(&format!("\"evaluations\":{},", engine.evaluations()));
        out.push_str("\"slos\":[");
        for (i, spec) in engine.specs().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"name\":\"{}\",", json_escape(&spec.name)));
            out.push_str(&format!("\"state\":\"{}\",", engine.state(i).label()));
            out.push_str(&format!("\"threshold\":{},", json_num(spec.threshold)));
            out.push_str("\"history\":[");
            for (j, p) in engine.history(i).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"unix_us\":{},\"value\":{},\"breaching\":{}}}",
                    p.unix_us,
                    json_num(p.value),
                    p.breaching
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::Signal;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema {
            counters: vec!["requests.advise".into(), "errors.advise".into()],
            ..Schema::default()
        })
    }

    fn config() -> HealthConfig {
        let slo = SloSpec::new(
            "error_ratio",
            Signal::Ratio { num: vec!["errors.".into()], den: vec!["requests.".into()] },
            0.05,
        )
        .windows(Duration::from_secs(5), Duration::from_secs(10))
        .hysteresis(2, 2)
        .critical();
        HealthConfig { slos: vec![slo], ..HealthConfig::default() }
    }

    fn sample(t_s: u64, requests: u64, errors: u64) -> Sample {
        Sample { unix_us: t_s * 1_000_000, counters: vec![requests, errors], ..Sample::default() }
    }

    #[test]
    fn ingest_drives_alerts_and_observers_see_transitions() {
        let hub = HealthHub::new(schema(), &config());
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        hub.on_transition(Box::new(move |t| {
            assert_eq!(t.slo, "error_ratio");
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        hub.ingest(&sample(0, 100, 0));
        assert_eq!(hub.verdict().worst, AlertState::Ok);
        assert_eq!(hub.verdict().http_status(), 200);
        // Heavy errors: ok -> pending -> firing.
        hub.ingest(&sample(1, 200, 90));
        hub.ingest(&sample(2, 300, 180));
        let v = hub.verdict();
        assert_eq!(v.worst, AlertState::Firing);
        assert!(v.critical_firing);
        assert_eq!(v.http_status(), 503);
        // Idle recovery: ratio reads 0.0 once both windows roll past
        // the errors, then the alert resolves.
        for t in 3..30 {
            hub.ingest(&sample(t, 300, 180));
        }
        let v = hub.verdict();
        assert!(matches!(v.worst, AlertState::Resolved | AlertState::Ok), "{v:?}");
        assert_eq!(v.http_status(), 200);
        assert!(
            seen.load(Ordering::SeqCst) >= 3,
            "observer saw {} transitions",
            seen.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn health_json_shape() {
        let hub = HealthHub::new(schema(), &config());
        hub.ingest(&sample(0, 100, 0));
        hub.ingest(&sample(1, 200, 0));
        let (status, body) = hub.health_json();
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"name\":\"error_ratio\""), "{body}");
        assert!(body.contains("\"critical\":true"), "{body}");
        assert!(body.contains("\"cmp\":\">\""), "{body}");
        assert!(body.contains("\"scrape_interval_ms\":1000"), "{body}");
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(body.matches('{').count(), body.matches('}').count());
        assert_eq!(body.matches('[').count(), body.matches(']').count());
    }

    #[test]
    fn debug_json_has_ring_and_history() {
        let hub = HealthHub::new(schema(), &config());
        for t in 0..5 {
            hub.ingest(&sample(t, t * 10, 0));
        }
        let body = hub.debug_json();
        assert!(body.contains("\"ring\":{\"len\":5"), "{body}");
        assert!(body.contains("\"history\":["), "{body}");
        assert!(body.contains("\"breaching\":false"), "{body}");
        assert_eq!(body.matches('{').count(), body.matches('}').count());
    }

    #[test]
    fn no_slos_means_always_ok() {
        let hub = HealthHub::new(schema(), &HealthConfig::default());
        hub.ingest(&sample(0, 1, 1));
        let (status, body) = hub.health_json();
        assert_eq!(status, 200);
        assert!(body.contains("\"slos\":[]"), "{body}");
    }
}
