//! The alert state machine: ok → pending → firing → resolved, with
//! hysteresis streaks on both edges so a single noisy evaluation can
//! neither fire nor silence an alert.

/// Lifecycle state of one SLO's alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    /// Objective met; no recent breach.
    Ok,
    /// Breaching, but not for long enough to fire yet.
    Pending,
    /// Breaching for at least `pending_evals` consecutive evaluations.
    Firing,
    /// Was firing, has been healthy for `clear_evals` evaluations; one
    /// more healthy streak returns it to [`AlertState::Ok`].
    Resolved,
}

impl AlertState {
    /// Every state, in severity order (used to pre-register metric
    /// label values and to compute the overall verdict).
    pub const ALL: [AlertState; 4] =
        [AlertState::Ok, AlertState::Pending, AlertState::Firing, AlertState::Resolved];

    /// Stable lowercase label for metrics and JSON.
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }

    /// Dense index for per-state counters.
    pub fn index(self) -> usize {
        match self {
            AlertState::Ok => 0,
            AlertState::Pending => 1,
            AlertState::Firing => 2,
            AlertState::Resolved => 3,
        }
    }
}

/// One observed state change, with the evaluation that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// SLO name.
    pub slo: String,
    /// State before the evaluation.
    pub from: AlertState,
    /// State after the evaluation.
    pub to: AlertState,
    /// Wall-clock of the evaluation, microseconds since epoch.
    pub unix_us: u64,
    /// Fast-window signal value at the transition (NaN when the
    /// signal had no data).
    pub value: f64,
    /// Configured threshold.
    pub threshold: f64,
    /// Whether the SLO is marked critical (drives readiness 503s).
    pub critical: bool,
}

/// Per-SLO state machine. `step` is called once per evaluation with
/// the breach verdict; it returns the transition taken, if any.
#[derive(Debug, Clone)]
pub struct AlertMachine {
    state: AlertState,
    /// Consecutive breaching evaluations (reset by any healthy one).
    breach_streak: u32,
    /// Consecutive healthy evaluations (reset by any breach).
    ok_streak: u32,
    /// Breach streak needed to go pending → firing.
    pending_evals: u32,
    /// Healthy streak needed to leave pending/firing/resolved.
    clear_evals: u32,
    /// When the current state was entered.
    since_us: u64,
}

impl AlertMachine {
    /// A machine in [`AlertState::Ok`] with the given hysteresis.
    /// `pending_evals` counts breaches *including* the one that moved
    /// ok → pending, so with `pending_evals = 2` a sustained breach
    /// fires on the second consecutive breaching evaluation.
    pub fn new(pending_evals: u32, clear_evals: u32) -> Self {
        AlertMachine {
            state: AlertState::Ok,
            breach_streak: 0,
            ok_streak: 0,
            pending_evals: pending_evals.max(1),
            clear_evals: clear_evals.max(1),
            since_us: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// When the current state was entered (microseconds since epoch;
    /// 0 until the first transition).
    pub fn since_us(&self) -> u64 {
        self.since_us
    }

    /// Feed one evaluation verdict; returns `Some` when the state
    /// changed.
    pub fn step(&mut self, breaching: bool, unix_us: u64) -> Option<(AlertState, AlertState)> {
        if breaching {
            self.breach_streak += 1;
            self.ok_streak = 0;
        } else {
            self.ok_streak += 1;
            self.breach_streak = 0;
        }
        let next = match self.state {
            AlertState::Ok if breaching => AlertState::Pending,
            AlertState::Pending if breaching && self.breach_streak >= self.pending_evals => {
                AlertState::Firing
            }
            AlertState::Pending if !breaching && self.ok_streak >= self.clear_evals => {
                AlertState::Ok
            }
            AlertState::Firing if !breaching && self.ok_streak >= self.clear_evals => {
                AlertState::Resolved
            }
            AlertState::Resolved if breaching => AlertState::Pending,
            AlertState::Resolved if !breaching && self.ok_streak >= self.clear_evals => {
                AlertState::Ok
            }
            current => current,
        };
        if next != self.state {
            let from = self.state;
            self.state = next;
            self.since_us = unix_us;
            Some((from, next))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(m: &mut AlertMachine, verdicts: &[bool]) -> Vec<(AlertState, AlertState)> {
        verdicts.iter().enumerate().filter_map(|(i, &b)| m.step(b, i as u64)).collect()
    }

    #[test]
    fn sustained_breach_walks_ok_pending_firing() {
        let mut m = AlertMachine::new(2, 3);
        let t = drive(&mut m, &[true, true]);
        assert_eq!(
            t,
            vec![(AlertState::Ok, AlertState::Pending), (AlertState::Pending, AlertState::Firing),]
        );
    }

    #[test]
    fn recovery_walks_firing_resolved_ok() {
        let mut m = AlertMachine::new(1, 2);
        m.step(true, 0); // ok -> pending
        m.step(true, 1); // pending -> firing (pending_evals clamped to 1... streak 2)
        assert_eq!(m.state(), AlertState::Firing);
        let t = drive(&mut m, &[false, false, false, false]);
        assert_eq!(
            t,
            vec![
                (AlertState::Firing, AlertState::Resolved),
                (AlertState::Resolved, AlertState::Ok),
            ]
        );
    }

    #[test]
    fn blip_in_pending_returns_to_ok_without_firing() {
        let mut m = AlertMachine::new(3, 2);
        drive(&mut m, &[true, false, false]);
        assert_eq!(m.state(), AlertState::Ok);
    }

    #[test]
    fn single_ok_does_not_silence_firing() {
        let mut m = AlertMachine::new(1, 3);
        m.step(true, 0);
        m.step(true, 1);
        assert_eq!(m.state(), AlertState::Firing);
        m.step(false, 2);
        m.step(false, 3);
        assert_eq!(m.state(), AlertState::Firing, "ok streak below clear_evals");
        m.step(true, 4);
        m.step(false, 5);
        m.step(false, 6);
        assert_eq!(m.state(), AlertState::Firing, "breach reset the ok streak");
        m.step(false, 7);
        assert_eq!(m.state(), AlertState::Resolved);
    }

    #[test]
    fn resolved_rebreach_goes_back_to_pending() {
        let mut m = AlertMachine::new(1, 1);
        m.step(true, 0);
        m.step(true, 1);
        m.step(false, 2);
        assert_eq!(m.state(), AlertState::Resolved);
        let t = m.step(true, 3);
        assert_eq!(t, Some((AlertState::Resolved, AlertState::Pending)));
    }

    #[test]
    fn since_tracks_entry_time() {
        let mut m = AlertMachine::new(1, 1);
        m.step(true, 10);
        assert_eq!(m.since_us(), 10);
        m.step(true, 20);
        assert_eq!(m.since_us(), 20);
        m.step(true, 30); // still firing, no transition
        assert_eq!(m.since_us(), 20);
    }
}
