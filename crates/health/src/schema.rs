//! The serve-agnostic snapshot schema: what one self-scrape looks like.
//!
//! A [`Schema`] fixes the series names and histogram bucket bounds once,
//! at sampler start; every [`Sample`] then carries only values, in
//! schema order. That fixed order is what makes the ring's delta
//! encoding trivial — two consecutive samples are the same-length word
//! vector, so a delta is a per-word subtraction.

/// Bucket bounds for one histogram series (upper bounds in seconds,
/// `+Inf` implied as a final overflow bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct HistSchema {
    /// Series name, e.g. `latency` or `stage.read`.
    pub name: String,
    /// Finite bucket upper bounds; samples carry `bounds.len() + 1`
    /// bucket counts (the last is the overflow bucket).
    pub bounds: Vec<f64>,
}

/// The fixed set of series one sampler produces. Built once; every
/// sample indexes into these name vectors positionally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    /// Monotonic counters (`u64`).
    pub counters: Vec<String>,
    /// Integer gauges (`i64`, may go negative transiently).
    pub gauges: Vec<String>,
    /// Float gauges (`f64`; `NaN` allowed, e.g. MAPE before data).
    pub values: Vec<String>,
    /// Histograms (cumulative-free bucket counts + sum + count).
    pub histograms: Vec<HistSchema>,
}

impl Schema {
    /// Number of `u64` words one flattened sample occupies (excluding
    /// the timestamp, which the ring stores per entry).
    pub fn width(&self) -> usize {
        self.counters.len()
            + self.gauges.len()
            + self.values.len()
            + self.histograms.iter().map(|h| h.bounds.len() + 1 + 2).sum::<usize>()
    }

    /// Position of a counter by name.
    pub fn counter_index(&self, name: &str) -> Option<usize> {
        self.counters.iter().position(|n| n == name)
    }

    /// Position of a gauge by name.
    pub fn gauge_index(&self, name: &str) -> Option<usize> {
        self.gauges.iter().position(|n| n == name)
    }

    /// Position of a float value by name.
    pub fn value_index(&self, name: &str) -> Option<usize> {
        self.values.iter().position(|n| n == name)
    }

    /// Position of a histogram by name.
    pub fn histogram_index(&self, name: &str) -> Option<usize> {
        self.histograms.iter().position(|h| h.name == name)
    }

    /// Flatten a sample into schema-ordered `u64` words. Gauges are
    /// stored as two's-complement bit patterns, float values as IEEE
    /// bit patterns — both delta-encode well because consecutive
    /// samples usually repeat the exact bits.
    pub fn flatten(&self, sample: &Sample) -> Vec<u64> {
        debug_assert_eq!(sample.counters.len(), self.counters.len());
        debug_assert_eq!(sample.gauges.len(), self.gauges.len());
        debug_assert_eq!(sample.values.len(), self.values.len());
        debug_assert_eq!(sample.hists.len(), self.histograms.len());
        let mut words = Vec::with_capacity(self.width());
        words.extend_from_slice(&sample.counters);
        words.extend(sample.gauges.iter().map(|&g| g as u64));
        words.extend(sample.values.iter().map(|v| v.to_bits()));
        for h in &sample.hists {
            words.extend_from_slice(&h.buckets);
            words.push(h.sum_micros);
            words.push(h.count);
        }
        words
    }

    /// Rebuild a sample from schema-ordered words (inverse of
    /// [`Schema::flatten`]).
    pub fn unflatten(&self, unix_us: u64, words: &[u64]) -> Sample {
        debug_assert_eq!(words.len(), self.width());
        let mut at = 0usize;
        let counters = words[at..at + self.counters.len()].to_vec();
        at += self.counters.len();
        let gauges: Vec<i64> =
            words[at..at + self.gauges.len()].iter().map(|&w| w as i64).collect();
        at += self.gauges.len();
        let values: Vec<f64> =
            words[at..at + self.values.len()].iter().map(|&w| f64::from_bits(w)).collect();
        at += self.values.len();
        let mut hists = Vec::with_capacity(self.histograms.len());
        for h in &self.histograms {
            let n = h.bounds.len() + 1;
            let buckets = words[at..at + n].to_vec();
            at += n;
            let sum_micros = words[at];
            let count = words[at + 1];
            at += 2;
            hists.push(HistSample { buckets, sum_micros, count });
        }
        Sample { unix_us, counters, gauges, values, hists }
    }
}

/// One histogram's worth of a snapshot: per-bucket counts (not
/// cumulative), total observed micros, and observation count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistSample {
    /// Per-bucket counts, overflow bucket last (`bounds.len() + 1`).
    pub buckets: Vec<u64>,
    /// Sum of observed durations, in microseconds.
    pub sum_micros: u64,
    /// Total observations.
    pub count: u64,
}

impl HistSample {
    /// Total observations according to the bucket counts (used by the
    /// consistency checks: must be >= `count` when the producer reads
    /// `count` before the buckets).
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// One self-scrape snapshot: every schema series, read at (close to)
/// one instant, stamped with wall-clock microseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sample {
    /// Wall-clock timestamp, microseconds since the Unix epoch.
    pub unix_us: u64,
    /// Counter values, in [`Schema::counters`] order.
    pub counters: Vec<u64>,
    /// Gauge values, in [`Schema::gauges`] order.
    pub gauges: Vec<i64>,
    /// Float values, in [`Schema::values`] order.
    pub values: Vec<f64>,
    /// Histogram snapshots, in [`Schema::histograms`] order.
    pub hists: Vec<HistSample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        Schema {
            counters: vec!["requests".into(), "errors".into()],
            gauges: vec!["in_flight".into()],
            values: vec!["mape".into()],
            histograms: vec![HistSchema { name: "latency".into(), bounds: vec![0.001, 0.01] }],
        }
    }

    #[test]
    fn flatten_round_trips() {
        let schema = demo_schema();
        let sample = Sample {
            unix_us: 1_700_000_000_000_000,
            counters: vec![10, 2],
            gauges: vec![-3],
            values: vec![0.25],
            hists: vec![HistSample { buckets: vec![5, 3, 2], sum_micros: 1234, count: 10 }],
        };
        let words = schema.flatten(&sample);
        assert_eq!(words.len(), schema.width());
        let back = schema.unflatten(sample.unix_us, &words);
        assert_eq!(back, sample);
    }

    #[test]
    fn nan_values_survive_the_bit_round_trip() {
        let schema = Schema { values: vec!["mape".into()], ..Schema::default() };
        let sample = Sample { unix_us: 1, values: vec![f64::NAN], ..Sample::default() };
        let back = schema.unflatten(1, &schema.flatten(&sample));
        assert!(back.values[0].is_nan());
    }

    #[test]
    fn indices_resolve_by_name() {
        let schema = demo_schema();
        assert_eq!(schema.counter_index("errors"), Some(1));
        assert_eq!(schema.counter_index("nope"), None);
        assert_eq!(schema.gauge_index("in_flight"), Some(0));
        assert_eq!(schema.value_index("mape"), Some(0));
        assert_eq!(schema.histogram_index("latency"), Some(0));
    }
}
