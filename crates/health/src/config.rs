//! Std-only parser for user-supplied SLO rules (`--slo-file`).
//!
//! The format is a small TOML subset: `[slo.<name>]` section headers,
//! `key = value` lines, `#` comments, quoted or bare strings. Example:
//!
//! ```text
//! [slo.predict_p99]
//! signal = "quantile"
//! hist = "latency"
//! q = 0.99
//! max = 0.25
//! fast_window = "1m"
//! slow_window = "5m"
//! pending_for = 2
//! clear_for = 3
//! critical = true
//! ```

use std::time::Duration;

use crate::slo::{Cmp, Signal, SloSpec};

/// Parse a human duration: `500ms`, `30s`, `5m`, `1h`, or bare
/// seconds (`30`).
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (num, unit) = match s.find(|c: char| !c.is_ascii_digit() && c != '.') {
        Some(i) => s.split_at(i),
        None => (s, "s"),
    };
    let value: f64 = num.parse().map_err(|_| format!("bad duration `{s}`"))?;
    let secs = match unit.trim() {
        "ms" => value / 1000.0,
        "s" | "" => value,
        "m" => value * 60.0,
        "h" => value * 3600.0,
        u => return Err(format!("bad duration unit `{u}` in `{s}`")),
    };
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("bad duration `{s}`"));
    }
    Ok(Duration::from_secs_f64(secs))
}

/// Parse an SLO rules file. Returns every `[slo.<name>]` section as a
/// [`SloSpec`]; any malformed line, unknown key, or incomplete
/// section is an error naming the line.
pub fn parse_slo_file(text: &str) -> Result<Vec<SloSpec>, String> {
    let mut specs = Vec::new();
    let mut current: Option<SectionBuilder> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated section header"))?
                .trim();
            let slo_name = name
                .strip_prefix("slo.")
                .ok_or_else(|| format!("line {lineno}: expected [slo.<name>], got [{name}]"))?;
            if slo_name.is_empty() {
                return Err(format!("line {lineno}: empty SLO name"));
            }
            if let Some(done) = current.take() {
                specs.push(done.build()?);
            }
            current = Some(SectionBuilder::new(slo_name));
            continue;
        }
        let (key, value) =
            line.split_once('=').ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let section = current
            .as_mut()
            .ok_or_else(|| format!("line {lineno}: `key = value` before any [slo.*] section"))?;
        section
            .set(key.trim(), unquote(value.trim()))
            .map_err(|e| format!("line {lineno}: {e}"))?;
    }
    if let Some(done) = current.take() {
        specs.push(done.build()?);
    }
    Ok(specs)
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> &str {
    s.strip_prefix('"').and_then(|s| s.strip_suffix('"')).unwrap_or(s)
}

fn parse_list(s: &str) -> Vec<String> {
    s.split(',').map(|p| unquote(p.trim()).to_string()).filter(|p| !p.is_empty()).collect()
}

struct SectionBuilder {
    name: String,
    signal: Option<String>,
    hist: Option<String>,
    q: Option<f64>,
    num: Vec<String>,
    den: Vec<String>,
    prefix: Option<String>,
    threshold: Option<(f64, Cmp)>,
    fast_window: Option<Duration>,
    slow_window: Option<Duration>,
    pending_evals: Option<u32>,
    clear_evals: Option<u32>,
    critical: bool,
}

impl SectionBuilder {
    fn new(name: &str) -> Self {
        SectionBuilder {
            name: name.to_string(),
            signal: None,
            hist: None,
            q: None,
            num: Vec::new(),
            den: Vec::new(),
            prefix: None,
            threshold: None,
            fast_window: None,
            slow_window: None,
            pending_evals: None,
            clear_evals: None,
            critical: false,
        }
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "signal" => self.signal = Some(value.to_string()),
            "hist" => self.hist = Some(value.to_string()),
            "q" => self.q = Some(value.parse().map_err(|_| format!("bad q `{value}`"))?),
            "num" => self.num = parse_list(value),
            "den" => self.den = parse_list(value),
            "prefix" => self.prefix = Some(value.to_string()),
            "max" => {
                let t: f64 = value.parse().map_err(|_| format!("bad max `{value}`"))?;
                self.threshold = Some((t, Cmp::Above));
            }
            "min" => {
                let t: f64 = value.parse().map_err(|_| format!("bad min `{value}`"))?;
                self.threshold = Some((t, Cmp::Below));
            }
            "fast_window" => self.fast_window = Some(parse_duration(value)?),
            "slow_window" => self.slow_window = Some(parse_duration(value)?),
            "pending_for" => {
                self.pending_evals =
                    Some(value.parse().map_err(|_| format!("bad pending_for `{value}`"))?)
            }
            "clear_for" => {
                self.clear_evals =
                    Some(value.parse().map_err(|_| format!("bad clear_for `{value}`"))?)
            }
            "critical" => {
                self.critical = match value {
                    "true" => true,
                    "false" => false,
                    v => return Err(format!("bad critical `{v}` (true/false)")),
                }
            }
            k => return Err(format!("unknown key `{k}`")),
        }
        Ok(())
    }

    fn build(self) -> Result<SloSpec, String> {
        let ctx = |msg: &str| format!("[slo.{}]: {msg}", self.name);
        let signal_kind = self.signal.as_deref().ok_or_else(|| ctx("missing `signal`"))?;
        let signal = match signal_kind {
            "quantile" => Signal::Quantile {
                hist: self.hist.clone().ok_or_else(|| ctx("quantile needs `hist`"))?,
                q: self.q.ok_or_else(|| ctx("quantile needs `q`"))?,
            },
            "ratio" => {
                if self.num.is_empty() || self.den.is_empty() {
                    return Err(ctx("ratio needs `num` and `den`"));
                }
                Signal::Ratio { num: self.num.clone(), den: self.den.clone() }
            }
            "rate" => {
                if self.num.is_empty() {
                    return Err(ctx("rate needs `num`"));
                }
                Signal::Rate { counters: self.num.clone() }
            }
            "delta" => Signal::DeltaPrefix {
                prefix: self.prefix.clone().ok_or_else(|| ctx("delta needs `prefix`"))?,
            },
            "value_max" => Signal::ValueMax {
                prefix: self.prefix.clone().ok_or_else(|| ctx("value_max needs `prefix`"))?,
            },
            "gauge_max" => Signal::GaugeMax {
                prefix: self.prefix.clone().ok_or_else(|| ctx("gauge_max needs `prefix`"))?,
            },
            k => return Err(ctx(&format!("unknown signal `{k}`"))),
        };
        let (threshold, cmp) =
            self.threshold.ok_or_else(|| ctx("missing `max` or `min` threshold"))?;
        let mut spec = SloSpec::new(self.name, signal, threshold);
        spec.cmp = cmp;
        if let Some(w) = self.fast_window {
            spec.fast_window = w;
        }
        if let Some(w) = self.slow_window {
            spec.slow_window = w;
        }
        if let Some(p) = self.pending_evals {
            spec.pending_evals = p.max(1);
        }
        if let Some(c) = self.clear_evals {
            spec.clear_evals = c.max(1);
        }
        spec.critical = self.critical;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("30s").unwrap(), Duration::from_secs(30));
        assert_eq!(parse_duration("5m").unwrap(), Duration::from_secs(300));
        assert_eq!(parse_duration("1h").unwrap(), Duration::from_secs(3600));
        assert_eq!(parse_duration("45").unwrap(), Duration::from_secs(45));
        assert!(parse_duration("5 fortnights").is_err());
        assert!(parse_duration("").is_err());
    }

    #[test]
    fn full_file_parses() {
        let text = r#"
# local overrides
[slo.predict_p99]
signal = "quantile"
hist = "latency"
q = 0.99
max = 0.25
fast_window = "30s"
slow_window = "5m"
pending_for = 3
clear_for = 4
critical = true

[slo.shed_ratio]
signal = "ratio"
num = "shed"            # shed only, not errors
den = "requests."
max = 0.10

[slo.drift]
signal = "delta"
prefix = "quality.drift_trips."
max = 0.5

[slo.throughput_floor]
signal = "rate"
num = "requests."
min = 1.0
"#;
        let specs = parse_slo_file(text).unwrap();
        assert_eq!(specs.len(), 4);
        let p99 = &specs[0];
        assert_eq!(p99.name, "predict_p99");
        assert_eq!(p99.signal, Signal::Quantile { hist: "latency".into(), q: 0.99 });
        assert_eq!(p99.threshold, 0.25);
        assert_eq!(p99.cmp, Cmp::Above);
        assert_eq!(p99.fast_window, Duration::from_secs(30));
        assert_eq!(p99.slow_window, Duration::from_secs(300));
        assert_eq!(p99.pending_evals, 3);
        assert_eq!(p99.clear_evals, 4);
        assert!(p99.critical);
        let shed = &specs[1];
        assert_eq!(
            shed.signal,
            Signal::Ratio { num: vec!["shed".into()], den: vec!["requests.".into()] }
        );
        assert!(!shed.critical);
        assert_eq!(specs[2].signal, Signal::DeltaPrefix { prefix: "quality.drift_trips.".into() });
        let floor = &specs[3];
        assert_eq!(floor.signal, Signal::Rate { counters: vec!["requests.".into()] });
        assert_eq!(floor.cmp, Cmp::Below);
    }

    #[test]
    fn errors_name_the_line_or_section() {
        let err = parse_slo_file("signal = \"ratio\"").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_slo_file("[slo.x]\nsignal = \"quantile\"\nmax = 1").unwrap_err();
        assert!(err.contains("[slo.x]"), "{err}");
        let err =
            parse_slo_file("[slo.x]\nsignal = \"ratio\"\nnum = \"a\"\nden = \"b\"").unwrap_err();
        assert!(err.contains("threshold"), "{err}");
        let err = parse_slo_file("[slo.x]\nwat = 1").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let err = parse_slo_file("[wrong.x]\n").unwrap_err();
        assert!(err.contains("expected [slo.<name>]"), "{err}");
    }

    #[test]
    fn comments_respect_quotes() {
        let specs =
            parse_slo_file("[slo.h]\nsignal = \"delta\"\nprefix = \"a#b\" # trailing\nmax = 1\n")
                .unwrap();
        assert_eq!(specs[0].signal, Signal::DeltaPrefix { prefix: "a#b".into() });
    }
}
