//! In-process telemetry history, SLO evaluation, and alerting.
//!
//! The serving daemon emits rich telemetry (request counters, latency
//! histograms, quality gauges) but a metric registry only knows *now* —
//! it cannot answer "has the advise p99 been over budget for the last
//! five minutes?". This crate adds the missing memory and judgment,
//! entirely in-process and entirely `std`:
//!
//! * [`Schema`] / [`Sample`] — a serve-agnostic snapshot of named
//!   counters, gauges, float values, and histograms. The producer (the
//!   daemon's self-scrape sampler) decides the series names; this crate
//!   never depends on the metric registry it observes.
//! * [`Ring`] — a bounded, delta-compressed history of samples.
//!   Consecutive snapshots differ by a handful of increments, so each
//!   entry stores zigzag-varint deltas against its predecessor: a
//!   steady-state sample costs a few bytes, not a few kilobytes. The
//!   ring evicts by byte budget and by retention window.
//! * [`WindowView`] — counter-rate, ratio, and histogram-quantile
//!   derivation over an arbitrary lookback slice of the ring.
//! * [`SloSpec`] / [`SloEngine`] — declarative objectives evaluated as
//!   fast/slow burn-rate window pairs (multi-window multi-burn
//!   alerting: both windows must breach before an alert advances).
//! * [`AlertMachine`] — the ok → pending → firing → resolved state
//!   machine with hysteresis on both edges; every transition is
//!   reported so the embedder can count and log it.
//! * [`HealthHub`] — ties the above together behind one `ingest`
//!   entry point and renders the `/v1/health` and `/debug/slo` JSON
//!   surfaces.
//! * [`parse_slo_file`] — a std-only parser for user-supplied SLO
//!   rules in a small TOML-like format (`--slo-file`).
//! * [`sparkline`] — ASCII sparklines over ring history for the
//!   `chemcost health` CLI.
//!
//! The ring is the in-memory precursor of the WAL-backed durable
//! observation store on the roadmap: the snapshot schema and the delta
//! encoding are exactly what a segment file would hold.

mod alert;
mod config;
mod hub;
mod json;
mod ring;
mod schema;
mod slo;
mod spark;
mod window;

pub use alert::{AlertMachine, AlertState, Transition};
pub use config::{parse_duration, parse_slo_file};
pub use hub::{HealthConfig, HealthHub, SloStatus, Verdict};
pub use json::{json_escape, json_num};
pub use ring::{Ring, RingStats};
pub use schema::{HistSample, HistSchema, Sample, Schema};
pub use slo::{Cmp, EvalPoint, Signal, SloEngine, SloSpec};
pub use spark::sparkline;
pub use window::WindowView;
