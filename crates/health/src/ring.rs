//! Bounded, delta-compressed sample history.
//!
//! Consecutive self-scrapes of a metric registry are nearly identical:
//! a handful of counters advanced, everything else repeats. Storing
//! full snapshots would cost `width × 8` bytes per second; storing the
//! word-wise difference as zigzag varints costs one byte per unchanged
//! word and a few bytes per changed one. The ring keeps a running
//! `base` (the flattened sample just *before* the oldest retained
//! entry), so eviction folds the front delta into the base instead of
//! re-encoding anything.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::schema::{Sample, Schema};

/// Fixed per-entry bookkeeping charged against the byte budget
/// (timestamp + Vec header, approximately).
const ENTRY_OVERHEAD: usize = 24;

/// Delta-compressed ring of [`Sample`]s with a byte budget and a
/// retention window. All methods take `&self`; the ring is shared
/// between the sampler thread and HTTP readers.
pub struct Ring {
    schema: Arc<Schema>,
    max_bytes: usize,
    retention_us: u64,
    inner: Mutex<RingInner>,
}

struct RingInner {
    /// Flattened words of the sample immediately before `entries[0]`
    /// (all-zero before the first sample ever pushed).
    base: Vec<u64>,
    base_unix_us: u64,
    entries: VecDeque<Entry>,
    /// Flattened words of the newest sample (delta source for the next
    /// push).
    last: Vec<u64>,
    /// Encoded payload bytes currently held (incl. per-entry overhead).
    bytes: usize,
    appended: u64,
    evicted: u64,
}

struct Entry {
    unix_us: u64,
    delta: Vec<u8>,
}

/// Point-in-time accounting for `/debug/slo` and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingStats {
    /// Entries currently retained.
    pub len: usize,
    /// Encoded bytes currently held (including per-entry overhead).
    pub bytes: usize,
    /// Samples pushed over the ring's lifetime.
    pub appended: u64,
    /// Samples evicted over the ring's lifetime.
    pub evicted: u64,
    /// Microseconds between oldest and newest retained sample.
    pub span_us: u64,
}

impl Ring {
    /// Create a ring for `schema`, bounded by `max_bytes` of encoded
    /// payload and `retention` worth of history (whichever bites
    /// first). At least one entry is always retained.
    pub fn new(schema: Arc<Schema>, max_bytes: usize, retention_us: u64) -> Self {
        let width = schema.width();
        Ring {
            schema,
            max_bytes,
            retention_us,
            inner: Mutex::new(RingInner {
                base: vec![0; width],
                base_unix_us: 0,
                entries: VecDeque::new(),
                last: vec![0; width],
                bytes: 0,
                appended: 0,
                evicted: 0,
            }),
        }
    }

    /// The schema this ring stores samples of.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Append one sample, evicting from the front as needed to stay
    /// within the byte budget and retention window.
    pub fn push(&self, sample: &Sample) {
        let words = self.schema.flatten(sample);
        let mut inner = self.inner.lock().unwrap();
        let delta = encode_delta(&inner.last, &words);
        inner.bytes += delta.len() + ENTRY_OVERHEAD;
        inner.entries.push_back(Entry { unix_us: sample.unix_us, delta });
        inner.last = words;
        inner.appended += 1;
        let newest = sample.unix_us;
        while inner.entries.len() > 1
            && (inner.bytes > self.max_bytes
                || newest.saturating_sub(inner.entries.front().unwrap().unix_us)
                    > self.retention_us)
        {
            let front = inner.entries.pop_front().unwrap();
            inner.bytes -= front.delta.len() + ENTRY_OVERHEAD;
            // Fold the evicted delta into the base so replay still
            // starts from a correct absolute state.
            let mut base = std::mem::take(&mut inner.base);
            apply_delta(&mut base, &front.delta);
            inner.base = base;
            inner.base_unix_us = front.unix_us;
            inner.evicted += 1;
        }
    }

    /// Replay every retained sample with `unix_us >= since_unix_us`,
    /// oldest first. Pass `0` for the full history.
    pub fn samples_since(&self, since_unix_us: u64) -> Vec<Sample> {
        let inner = self.inner.lock().unwrap();
        let mut words = inner.base.clone();
        let mut out = Vec::new();
        for entry in &inner.entries {
            apply_delta(&mut words, &entry.delta);
            if entry.unix_us >= since_unix_us {
                out.push(self.schema.unflatten(entry.unix_us, &words));
            }
        }
        out
    }

    /// The newest retained sample, if any.
    pub fn latest(&self) -> Option<Sample> {
        let inner = self.inner.lock().unwrap();
        let entry = inner.entries.back()?;
        Some(self.schema.unflatten(entry.unix_us, &inner.last))
    }

    /// Current accounting.
    pub fn stats(&self) -> RingStats {
        let inner = self.inner.lock().unwrap();
        let span_us = match (inner.entries.front(), inner.entries.back()) {
            (Some(f), Some(b)) => b.unix_us.saturating_sub(f.unix_us),
            _ => 0,
        };
        RingStats {
            len: inner.entries.len(),
            bytes: inner.bytes,
            appended: inner.appended,
            evicted: inner.evicted,
            span_us,
        }
    }
}

/// Zigzag-encode a signed word-wise delta so small moves in either
/// direction stay small on the wire.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(bytes: &[u8], at: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*at];
        *at += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
    }
}

fn encode_delta(prev: &[u64], next: &[u64]) -> Vec<u8> {
    debug_assert_eq!(prev.len(), next.len());
    let mut out = Vec::with_capacity(next.len() / 4 + 8);
    for (&p, &n) in prev.iter().zip(next) {
        push_varint(&mut out, zigzag(n.wrapping_sub(p) as i64));
    }
    out
}

fn apply_delta(words: &mut [u64], delta: &[u8]) {
    let mut at = 0usize;
    for w in words.iter_mut() {
        let d = unzigzag(read_varint(delta, &mut at));
        *w = w.wrapping_add(d as u64);
    }
    debug_assert_eq!(at, delta.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{HistSample, HistSchema};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema {
            counters: vec!["requests".into(), "errors".into()],
            gauges: vec!["in_flight".into()],
            values: vec!["mape".into()],
            histograms: vec![HistSchema { name: "latency".into(), bounds: vec![0.001, 0.01] }],
        })
    }

    fn sample(t: u64, requests: u64) -> Sample {
        Sample {
            unix_us: t,
            counters: vec![requests, requests / 10],
            gauges: vec![(requests % 5) as i64 - 2],
            values: vec![requests as f64 * 0.001],
            hists: vec![HistSample {
                buckets: vec![requests, requests / 2, 0],
                sum_micros: requests * 100,
                count: requests + requests / 2,
            }],
        }
    }

    #[test]
    fn replay_round_trips_exactly() {
        let ring = Ring::new(schema(), 1 << 20, u64::MAX);
        let samples: Vec<Sample> = (0..50).map(|i| sample(i * 1_000_000, i * 7)).collect();
        for s in &samples {
            ring.push(s);
        }
        assert_eq!(ring.samples_since(0), samples);
        assert_eq!(ring.latest().as_ref(), samples.last());
    }

    #[test]
    fn since_filter_slices_by_timestamp() {
        let ring = Ring::new(schema(), 1 << 20, u64::MAX);
        for i in 0..10u64 {
            ring.push(&sample(i * 1_000_000, i));
        }
        let tail = ring.samples_since(7_000_000);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].unix_us, 7_000_000);
    }

    #[test]
    fn byte_budget_evicts_but_replay_stays_correct() {
        let ring = Ring::new(schema(), 600, u64::MAX);
        for i in 0..200u64 {
            ring.push(&sample(i * 1_000_000, i * 3));
        }
        let stats = ring.stats();
        assert!(stats.bytes <= 600, "bytes {} over budget", stats.bytes);
        assert!(stats.evicted > 0);
        assert_eq!(stats.appended, 200);
        let replay = ring.samples_since(0);
        assert_eq!(stats.len, replay.len());
        // Evicted prefix folded into base: replayed samples are still
        // the exact absolute values that were pushed.
        let newest = replay.last().unwrap();
        assert_eq!(newest, &sample(199 * 1_000_000, 199 * 3));
        let oldest = replay.first().unwrap();
        let i = oldest.unix_us / 1_000_000;
        assert_eq!(oldest, &sample(i * 1_000_000, i * 3));
    }

    #[test]
    fn retention_window_evicts_old_entries() {
        // 5-second retention with 1-second samples keeps ~6 entries.
        let ring = Ring::new(schema(), 1 << 20, 5_000_000);
        for i in 0..60u64 {
            ring.push(&sample(i * 1_000_000, i));
        }
        let stats = ring.stats();
        assert!(stats.len <= 6, "kept {} entries", stats.len);
        assert!(stats.span_us <= 5_000_000);
        let replay = ring.samples_since(0);
        assert_eq!(replay.last().unwrap().unix_us, 59_000_000);
    }

    #[test]
    fn steady_state_deltas_are_small() {
        let ring = Ring::new(schema(), 1 << 20, u64::MAX);
        let s = sample(0, 100);
        for i in 0..100u64 {
            let mut s = s.clone();
            s.unix_us = i * 1_000_000;
            ring.push(&s);
        }
        // Width is 10 words; an unchanged sample costs 1 byte/word.
        let stats = ring.stats();
        let payload = stats.bytes - stats.len * ENTRY_OVERHEAD;
        assert!(payload < 100 * 12 + 64, "payload {payload} too large for identical samples");
    }

    #[test]
    fn varint_zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, 300, -300, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            push_varint(&mut buf, zigzag(v));
            let mut at = 0;
            assert_eq!(unzigzag(read_varint(&buf, &mut at)), v);
            assert_eq!(at, buf.len());
        }
    }
}
