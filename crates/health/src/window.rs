//! Derivation over a lookback slice of ring samples: counter deltas
//! and rates, ratios, gauge/value lookups, histogram quantiles.
//!
//! A window needs at least two samples to say anything about change;
//! with fewer it returns `None` and the SLO engine treats the signal
//! as not-breaching (never alert on missing data).

use crate::schema::{Sample, Schema};

/// A read-only view over a chronological slice of samples.
pub struct WindowView<'a> {
    schema: &'a Schema,
    samples: &'a [Sample],
}

impl<'a> WindowView<'a> {
    /// Wrap a chronological (oldest-first) slice.
    pub fn new(schema: &'a Schema, samples: &'a [Sample]) -> Self {
        WindowView { schema, samples }
    }

    /// Number of samples in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Wall-clock span of the window in seconds.
    pub fn span_seconds(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(f), Some(l)) => l.unix_us.saturating_sub(f.unix_us) as f64 / 1e6,
            _ => 0.0,
        }
    }

    /// Increase of one counter across the window.
    pub fn counter_delta(&self, name: &str) -> Option<u64> {
        let idx = self.schema.counter_index(name)?;
        let first = self.samples.first()?;
        let last = self.samples.last()?;
        if self.samples.len() < 2 {
            return None;
        }
        Some(last.counters[idx].saturating_sub(first.counters[idx]))
    }

    /// Summed increase of every counter whose name starts with
    /// `prefix` across the window.
    pub fn counter_delta_prefix(&self, prefix: &str) -> Option<u64> {
        if self.samples.len() < 2 {
            return None;
        }
        let first = self.samples.first()?;
        let last = self.samples.last()?;
        let mut total = 0u64;
        let mut matched = false;
        for (i, name) in self.schema.counters.iter().enumerate() {
            if name.starts_with(prefix) {
                matched = true;
                total += last.counters[i].saturating_sub(first.counters[i]);
            }
        }
        if matched {
            Some(total)
        } else {
            None
        }
    }

    /// Per-second rate of one counter across the window.
    pub fn rate_per_sec(&self, name: &str) -> Option<f64> {
        let delta = self.counter_delta(name)?;
        let span = self.span_seconds();
        if span <= 0.0 {
            return None;
        }
        Some(delta as f64 / span)
    }

    /// Delta-over-delta ratio of two counter prefixes. A zero
    /// denominator yields `Some(0.0)`: no traffic means no error
    /// budget burned, so an idle window must read as healthy (this is
    /// what lets error-ratio alerts resolve after chaos stops).
    pub fn ratio(&self, num_prefixes: &[String], den_prefixes: &[String]) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let num: u64 = num_prefixes.iter().filter_map(|p| self.counter_delta_prefix(p)).sum();
        let den: u64 = den_prefixes.iter().filter_map(|p| self.counter_delta_prefix(p)).sum();
        if den == 0 {
            return Some(0.0);
        }
        Some(num as f64 / den as f64)
    }

    /// Latest value of one integer gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        let idx = self.schema.gauge_index(name)?;
        Some(self.samples.last()?.gauges[idx])
    }

    /// Maximum latest-sample value over all gauges whose name starts
    /// with `prefix`.
    pub fn gauge_max_prefix(&self, prefix: &str) -> Option<i64> {
        let last = self.samples.last()?;
        self.schema
            .gauges
            .iter()
            .enumerate()
            .filter(|(_, n)| n.starts_with(prefix))
            .map(|(i, _)| last.gauges[i])
            .max()
    }

    /// Latest value of one float series.
    pub fn value(&self, name: &str) -> Option<f64> {
        let idx = self.schema.value_index(name)?;
        Some(self.samples.last()?.values[idx])
    }

    /// Maximum latest-sample value over all float series whose name
    /// starts with `prefix`, ignoring NaN entries (groups with no
    /// data yet).
    pub fn value_max_prefix(&self, prefix: &str) -> Option<f64> {
        let last = self.samples.last()?;
        self.schema
            .values
            .iter()
            .enumerate()
            .filter(|(_, n)| n.starts_with(prefix))
            .map(|(i, _)| last.values[i])
            .filter(|v| !v.is_nan())
            .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.max(v))))
    }

    /// Quantile of one histogram over the observations that landed
    /// *within* the window (bucket-count deltas between the first and
    /// last sample), linearly interpolated inside the winning bucket.
    /// Returns `None` when nothing was observed in the window.
    pub fn quantile(&self, hist: &str, q: f64) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let idx = self.schema.histogram_index(hist)?;
        let bounds = &self.schema.histograms[idx].bounds;
        let first = &self.samples.first()?.hists[idx];
        let last = &self.samples.last()?.hists[idx];
        let deltas: Vec<u64> =
            last.buckets.iter().zip(&first.buckets).map(|(&l, &f)| l.saturating_sub(f)).collect();
        let total: u64 = deltas.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &d) in deltas.iter().enumerate() {
            if d == 0 {
                continue;
            }
            let next = seen + d;
            if (next as f64) >= target {
                let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
                // The overflow bucket has no finite upper bound; clamp
                // to the last finite bound rather than invent one.
                let upper = if i < bounds.len() { bounds[i] } else { lower };
                let frac = (target - seen as f64) / d as f64;
                return Some(lower + (upper - lower) * frac.clamp(0.0, 1.0));
            }
            seen = next;
        }
        bounds.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{HistSample, HistSchema};

    fn schema() -> Schema {
        Schema {
            counters: vec![
                "requests.advise".into(),
                "requests.predict".into(),
                "errors.advise".into(),
                "shed".into(),
            ],
            gauges: vec!["in_flight".into(), "queue.a".into(), "queue.b".into()],
            values: vec!["mape.g1".into(), "mape.g2".into()],
            histograms: vec![HistSchema {
                name: "latency".into(),
                bounds: vec![0.001, 0.01, 0.1, 1.0],
            }],
        }
    }

    fn sample(t: u64, c: [u64; 4], hist_buckets: [u64; 5]) -> Sample {
        Sample {
            unix_us: t,
            counters: c.to_vec(),
            gauges: vec![2, 3, 7],
            values: vec![0.1, 0.4],
            hists: vec![HistSample {
                buckets: hist_buckets.to_vec(),
                sum_micros: 0,
                count: hist_buckets.iter().sum(),
            }],
        }
    }

    #[test]
    fn deltas_rates_and_ratios() {
        let schema = schema();
        let samples =
            vec![sample(0, [100, 50, 4, 1], [0; 5]), sample(10_000_000, [300, 70, 24, 6], [0; 5])];
        let w = WindowView::new(&schema, &samples);
        assert_eq!(w.counter_delta("requests.advise"), Some(200));
        assert_eq!(w.counter_delta_prefix("requests."), Some(220));
        assert_eq!(w.rate_per_sec("requests.advise"), Some(20.0));
        let r = w.ratio(&["errors.".into(), "shed".into()], &["requests.".into()]).unwrap();
        assert!((r - 25.0 / 220.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominator_ratio_is_zero_not_none() {
        let schema = schema();
        let samples =
            vec![sample(0, [100, 50, 4, 1], [0; 5]), sample(10_000_000, [100, 50, 9, 3], [0; 5])];
        let w = WindowView::new(&schema, &samples);
        assert_eq!(w.ratio(&["errors.".into()], &["requests.".into()]), Some(0.0));
    }

    #[test]
    fn single_sample_window_answers_none_for_change() {
        let schema = schema();
        let samples = vec![sample(0, [1, 1, 1, 1], [1; 5])];
        let w = WindowView::new(&schema, &samples);
        assert_eq!(w.counter_delta("shed"), None);
        assert_eq!(w.quantile("latency", 0.99), None);
        // Point-in-time lookups still work.
        assert_eq!(w.gauge("in_flight"), Some(2));
        assert_eq!(w.value("mape.g2"), Some(0.4));
    }

    #[test]
    fn prefix_maxima() {
        let schema = schema();
        let samples = vec![sample(0, [0; 4], [0; 5]), sample(1, [0; 4], [0; 5])];
        let w = WindowView::new(&schema, &samples);
        assert_eq!(w.gauge_max_prefix("queue."), Some(7));
        assert_eq!(w.value_max_prefix("mape."), Some(0.4));
        assert_eq!(w.value_max_prefix("nope."), None);
    }

    #[test]
    fn nan_values_are_skipped_in_max() {
        let schema = schema();
        let mut s0 = sample(0, [0; 4], [0; 5]);
        s0.values = vec![f64::NAN, f64::NAN];
        let samples = vec![s0];
        let w = WindowView::new(&schema, &samples);
        assert_eq!(w.value_max_prefix("mape."), None);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let schema = schema();
        // 90 observations <= 1ms, 10 in (1ms, 10ms].
        let samples =
            vec![sample(0, [0; 4], [0, 0, 0, 0, 0]), sample(60_000_000, [0; 4], [90, 10, 0, 0, 0])];
        let w = WindowView::new(&schema, &samples);
        let p50 = w.quantile("latency", 0.5).unwrap();
        assert!(p50 > 0.0 && p50 <= 0.001, "p50 {p50}");
        let p99 = w.quantile("latency", 0.99).unwrap();
        assert!(p99 > 0.001 && p99 <= 0.01, "p99 {p99}");
        // Window-relative: only deltas count. Same last sample with a
        // non-zero first sample shifts the quantile.
        let shifted = vec![
            sample(0, [0; 4], [90, 0, 0, 0, 0]),
            sample(60_000_000, [0; 4], [90, 10, 0, 0, 0]),
        ];
        let w2 = WindowView::new(&schema, &shifted);
        let p50b = w2.quantile("latency", 0.5).unwrap();
        assert!(p50b > 0.001 && p50b <= 0.01, "p50b {p50b}");
    }

    #[test]
    fn quantile_overflow_bucket_clamps_to_last_bound() {
        let schema = schema();
        let samples =
            vec![sample(0, [0; 4], [0, 0, 0, 0, 0]), sample(1_000_000, [0; 4], [0, 0, 0, 0, 5])];
        let w = WindowView::new(&schema, &samples);
        assert_eq!(w.quantile("latency", 0.99), Some(1.0));
    }
}
