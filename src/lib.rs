//! # chemcost
//!
//! ML-based estimation of computational resources for massively parallel
//! chemistry computations — a Rust reproduction of the SC 2025 paper
//! *"Guiding Application Users via Estimation of Computational Resources
//! for Massively Parallel Chemistry Computations"*.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`linalg`] — dense linear algebra + parallel utilities,
//! * [`ml`] — the from-scratch regression model suite, metrics, CV and
//!   hyper-parameter search,
//! * [`sim`] — the CCSD-iteration performance simulator standing in for
//!   runs on Aurora/Frontier,
//! * [`active`] — active-learning strategies (RS / US / QC),
//! * [`core`] — the user-facing advisor answering the shortest-time (STQ)
//!   and budget (BQ) questions,
//! * [`serve`] — the advisor-as-a-service HTTP daemon (`chemcost serve`)
//!   with model registry, threadpool and Prometheus metrics,
//! * [`obs`] — the zero-dependency structured observability layer
//!   (spans, events, `CHEMCOST_LOG` filtering, pluggable sinks) the
//!   whole stack logs through.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use chemcost_active as active;
pub use chemcost_core as core;
pub use chemcost_linalg as linalg;
pub use chemcost_ml as ml;
pub use chemcost_obs as obs;
pub use chemcost_serve as serve;
pub use chemcost_sim as sim;
