//! `chemcost` — command-line interface to the resource-estimation
//! framework.
//!
//! ```text
//! chemcost generate --machine aurora --out data.csv [--size N] [--seed S]
//! chemcost train    --data data.csv --out model.ccgb [--fast]
//! chemcost advise   --model model.ccgb --machine aurora --o 120 --v 900
//!                   [--goal stq|bq|pareto] [--budget NODE_HOURS] [--deadline SECONDS]
//! chemcost evaluate --model model.ccgb --data test.csv
//! chemcost importance --model model.ccgb --data data.csv
//! ```
//!
//! The CSV format is the one `chemcost-sim` writes
//! (`o,v,nodes,tile,seconds,node_hours` with a header row); `generate`
//! produces it from the bundled simulator, but measured data from a real
//! machine works identically.

use chemcost::core::advisor::{Advisor, Goal};
use chemcost::core::data::{samples_to_dataset, Target};
use chemcost::core::evaluation::features_of;
use chemcost::ml::gradient_boosting::GradientBoosting;
use chemcost::ml::importance::ranked_importance;
use chemcost::ml::metrics::Scores;
use chemcost::ml::persist::{load_gb, save_gb};
use chemcost::ml::Regressor;
use chemcost::serve::{
    ChaosProfile, Client, FaultPlane, ModelRegistry, RetryPolicy, Router, Server,
};
use chemcost::sim::datagen::{generate_dataset_sized, read_csv, table1_count, write_csv};
use chemcost::sim::machine::by_name;
use chemcost::sim::molecules::{self, BasisSet};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Parsed `--key value` / `--key=value` options plus the leading
/// subcommand.
#[derive(Debug)]
struct Args {
    command: String,
    options: HashMap<String, String>,
}

/// The options each subcommand understands; anything else is an error.
/// `None` means the command itself is unknown — main reports that with
/// the usage text, so option validation stays out of the way.
fn known_options(command: &str) -> Option<&'static [&'static str]> {
    match command {
        "generate" => Some(&["machine", "out", "size", "seed"]),
        "train" => Some(&["data", "out", "fast", "seed"]),
        "advise" => {
            Some(&["model", "machine", "o", "v", "molecule", "basis", "goal", "budget", "deadline"])
        }
        "evaluate" | "importance" => Some(&["model", "data"]),
        "serve" => Some(&[
            "addr",
            "model",
            "machine",
            "workers",
            "queue-cap",
            "max-conns",
            "batch-window-us",
            "batch-max",
            "chaos",
            "default-deadline-ms",
            "scrape-interval-ms",
            "slo-file",
        ]),
        "call" => Some(&["addr", "method", "path", "body", "deadline-ms", "retries"]),
        "quality" => Some(&["addr", "next"]),
        "top" => Some(&["addr", "slowest", "recent", "n", "watch", "route", "interval-ms"]),
        "health" => Some(&["addr", "watch", "window"]),
        "lifecycle" => {
            Some(&["addr", "model", "machine", "promote", "rollback", "freeze", "unfreeze"])
        }
        "version" | "--version" | "-V" => Some(&[]),
        "trace" => Some(&[
            "machine", "o", "v", "molecule", "basis", "nodes", "tile", "noise", "seed", "out",
        ]),
        "molecules" | "help" | "--help" | "-h" => Some(&[]),
        _ => None,
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let command = argv.first().cloned().ok_or("missing subcommand")?;
    let mut options = HashMap::new();
    let mut i = 1;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got {:?}", argv[i]))?;
        // `--key=value` form.
        if let Some((key, value)) = key.split_once('=') {
            check_known(&command, key)?;
            if value.is_empty() {
                return Err(format!("--{key}= requires a value"));
            }
            options.insert(key.to_string(), value.to_string());
            i += 1;
            continue;
        }
        check_known(&command, key)?;
        // `--key value` form; flags without a value (e.g. --fast) get "true".
        if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
            options.insert(key.to_string(), argv[i + 1].clone());
            i += 2;
        } else {
            options.insert(key.to_string(), "true".to_string());
            i += 1;
        }
    }
    Ok(Args { command, options })
}

fn check_known(command: &str, key: &str) -> Result<(), String> {
    if key.is_empty() {
        return Err("empty option name".into());
    }
    match known_options(command) {
        Some(allowed) if allowed.contains(&key) => Ok(()),
        Some(_) => Err(format!("unknown option --{key} for '{command}' (see `chemcost help`)")),
        None => Ok(()), // unknown command: main prints the usage text
    }
}

impl Args {
    fn get(&self, key: &str) -> Result<&str, String> {
        self.options.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
    }

    fn get_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.get(key)?.parse().map_err(|_| format!("--{key}: cannot parse {:?}", self.get(key)))
    }

    fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

fn usage() -> &'static str {
    "chemcost <command> [options]\n\
     commands:\n\
       generate   --machine aurora|frontier --out FILE [--size N] [--seed S]\n\
       train      --data FILE --out FILE [--fast] [--seed S]\n\
       advise     --model FILE --machine NAME (--o O --v V |\n\
                   --molecule NAME --basis cc-pvdz|cc-pvtz|cc-pvqz|aug-cc-pvdz|aug-cc-pvtz)\n\
                  [--goal stq|bq|pareto] [--budget NH] [--deadline S]\n\
       molecules  (list the built-in molecule catalog)\n\
       evaluate   --model FILE --data FILE\n\
       importance --model FILE --data FILE\n\
       trace      --machine NAME --nodes N --tile T (--o O --v V | --molecule ... --basis ...)\n\
                  [--noise SIGMA] [--seed S] [--out FILE]  (per-task JSONL + utilization)\n\
       serve      --model FILE --machine NAME [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
                  [--max-conns N] [--batch-window-us US] [--batch-max ROWS]\n\
                  [--default-deadline-ms MS] [--scrape-interval-ms MS] [--slo-file FILE]\n\
                  [--chaos slow-io|drop-conn|truncate-body|saturate|poison-reload|all]\n\
                   (chaos seeded by CHEMCOST_CHAOS_SEED; SLO rules in docs/HEALTH.md)\n\
       call       --path /v1/… [--addr HOST:PORT] [--method GET|POST] [--body JSON]\n\
                  [--deadline-ms MS] [--retries N]  (retrying client; GET and\n\
                   /v1/advise retry, other POSTs get one attempt)\n\
       quality    [--addr HOST:PORT] [--next]  (model-quality report from a running\n\
                   daemon; --next asks for active-learning-ranked experiments)\n\
       top        [--addr HOST:PORT] [--slowest | --recent] [--n ROWS] [--route SUBSTR]\n\
                  [--watch [--interval-ms MS]]  (per-request stage timelines from a\n\
                   daemon's flight recorder, /debug/requests; --watch tails new requests)\n\
       health     [--addr HOST:PORT] [--window 5m] [--watch]  (SLO verdicts, alert\n\
                   states, and sparklines from /v1/health + /debug/slo; docs/HEALTH.md)\n\
       lifecycle  [--addr HOST:PORT] [--model NAME] [--machine NAME]\n\
                  [--promote | --rollback | --freeze | --unfreeze]  (retrain/shadow/\n\
                   promote state from a running daemon; see docs/LIFECYCLE.md)\n\
       version    (build identity: version, git sha, dirty flag)\n\
     observability: set CHEMCOST_LOG=error|warn|info|debug|trace for structured logs on\n\
     stderr, CHEMCOST_LOG_JSON=FILE for a JSONL copy (see docs/OBSERVABILITY.md,\n\
     docs/ROBUSTNESS.md)"
}

fn machine_of(args: &Args) -> Result<chemcost::sim::MachineModel, String> {
    let name = args.get("machine")?;
    by_name(name).ok_or_else(|| format!("unknown machine {name:?} (aurora|frontier)"))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let machine = machine_of(args)?;
    let out = PathBuf::from(args.get("out")?);
    let size = args.get_parse::<usize>("size").unwrap_or_else(|_| table1_count(&machine));
    let seed = args.get_parse::<u64>("seed").unwrap_or(42);
    eprintln!("simulating {size} CCSD configurations on {} …", machine.name);
    let samples = generate_dataset_sized(&machine, size, seed);
    write_csv(&out, &samples).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!("wrote {} samples to {}", samples.len(), out.display());
    Ok(())
}

fn load_samples(path: &str) -> Result<Vec<chemcost::sim::datagen::Sample>, String> {
    read_csv(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let samples = load_samples(args.get("data")?)?;
    if samples.is_empty() {
        return Err("training data is empty".into());
    }
    let out = PathBuf::from(args.get("out")?);
    let train = samples_to_dataset(&samples, Target::Seconds);
    let mut gb = if args.flag("fast") {
        GradientBoosting::new(200, 6, 0.1)
    } else {
        GradientBoosting::paper_config()
    };
    gb.seed = args.get_parse::<u64>("seed").unwrap_or(0);
    eprintln!(
        "training GB ({} estimators, depth {}) on {} samples …",
        gb.n_estimators,
        gb.max_depth,
        train.len()
    );
    let started = std::time::Instant::now();
    gb.fit(&train.x, &train.y).map_err(|e| format!("training failed: {e}"))?;
    save_gb(&out, &gb).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "trained in {:.2} s ({} stages), model saved to {}",
        started.elapsed().as_secs_f64(),
        gb.n_stages(),
        out.display()
    );
    Ok(())
}

/// Resolve the problem size either from explicit `--o/--v` or from
/// `--molecule/--basis`.
fn problem_of(args: &Args) -> Result<(usize, usize), String> {
    if let Ok(name) = args.get("molecule") {
        let molecule = molecules::by_name(name).ok_or_else(|| {
            format!("unknown molecule {name:?}; run `chemcost molecules` for the catalog")
        })?;
        let basis_name = args.get("basis").unwrap_or("cc-pvtz");
        let basis =
            BasisSet::parse(basis_name).ok_or_else(|| format!("unknown basis {basis_name:?}"))?;
        let p = molecule.problem(basis);
        eprintln!(
            "{} in {}: {} electrons → O = {}, V = {}",
            molecule.name,
            basis.name(),
            molecule.electrons(),
            p.o,
            p.v
        );
        Ok((p.o, p.v))
    } else {
        Ok((args.get_parse("o")?, args.get_parse("v")?))
    }
}

fn cmd_molecules() -> Result<(), String> {
    println!("{:<24} {:>9} | O, V per basis", "molecule", "electrons");
    for m in molecules::catalog() {
        let sizes: Vec<String> = BasisSet::all()
            .iter()
            .map(|&b| {
                let p = m.problem(b);
                format!("{}:({},{})", b.name(), p.o, p.v)
            })
            .collect();
        println!("{:<24} {:>9} | {}", m.name, m.electrons(), sizes.join("  "));
    }
    Ok(())
}

fn cmd_advise(args: &Args) -> Result<(), String> {
    let machine = machine_of(args)?;
    let gb = load_gb(Path::new(args.get("model")?)).map_err(|e| format!("loading model: {e}"))?;
    let (o, v) = problem_of(args)?;
    let advisor = Advisor::new(&gb, machine);
    let goal = args.get("goal").unwrap_or("stq");
    match goal {
        "stq" | "bq" => {
            let g = if goal == "stq" { Goal::ShortestTime } else { Goal::Budget };
            match advisor.answer(o, v, g) {
                Some(r) => println!(
                    "{}: (O={o}, V={v}) → {} nodes, tile {}  |  predicted {:.1} s, {:.2} node-hours",
                    g.abbrev(),
                    r.nodes,
                    r.tile,
                    r.predicted_seconds,
                    r.predicted_node_hours
                ),
                None => println!("no feasible configuration for (O={o}, V={v}) on this machine"),
            }
        }
        "pareto" => {
            let frontier = advisor.pareto_frontier(o, v);
            if frontier.is_empty() {
                println!("no feasible configuration for (O={o}, V={v}) on this machine");
            }
            println!("{:>6} {:>5} {:>12} {:>12}", "nodes", "tile", "seconds", "node-hours");
            for r in frontier {
                println!(
                    "{:>6} {:>5} {:>12.1} {:>12.2}",
                    r.nodes, r.tile, r.predicted_seconds, r.predicted_node_hours
                );
            }
        }
        other => return Err(format!("unknown --goal {other:?} (stq|bq|pareto)")),
    }
    if let Ok(budget) = args.get_parse::<f64>("budget") {
        match advisor.fastest_within_budget(o, v, budget) {
            Some(r) => println!(
                "within {budget:.2} node-hours: {} nodes, tile {} → {:.1} s",
                r.nodes, r.tile, r.predicted_seconds
            ),
            None => println!("no configuration fits within {budget:.2} node-hours"),
        }
    }
    if let Ok(deadline) = args.get_parse::<f64>("deadline") {
        match advisor.cheapest_within_deadline(o, v, deadline) {
            Some(r) => println!(
                "within {deadline:.0} s: {} nodes, tile {} → {:.2} node-hours",
                r.nodes, r.tile, r.predicted_node_hours
            ),
            None => println!("no configuration meets a {deadline:.0} s deadline"),
        }
    }
    Ok(())
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let gb = load_gb(Path::new(args.get("model")?)).map_err(|e| format!("loading model: {e}"))?;
    let samples = load_samples(args.get("data")?)?;
    if samples.is_empty() {
        return Err("evaluation data is empty".into());
    }
    let x = features_of(&samples);
    let pred = gb.predict(&x);
    let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let scores = Scores::compute(&y, &pred);
    println!("{} samples: {scores}", samples.len());
    Ok(())
}

fn cmd_importance(args: &Args) -> Result<(), String> {
    let gb = load_gb(Path::new(args.get("model")?)).map_err(|e| format!("loading model: {e}"))?;
    let samples = load_samples(args.get("data")?)?;
    if samples.len() < 2 {
        return Err("need at least two samples".into());
    }
    let x = features_of(&samples);
    let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let names: Vec<String> =
        chemcost::sim::datagen::FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    println!("permutation importance (MSE increase when shuffled):");
    for (name, imp) in ranked_importance(&gb, &x, &y, &names, 0) {
        println!("  {name:>6}: {imp:.2}");
    }
    Ok(())
}

/// Replay one CCSD iteration task-by-task and dump the execution trace
/// as per-task JSONL (to `--out` or stdout) plus a utilization summary
/// on stderr.
fn cmd_trace(args: &Args) -> Result<(), String> {
    let machine = machine_of(args)?;
    let (o, v) = problem_of(args)?;
    let nodes = args.get_parse::<usize>("nodes")?;
    let tile = args.get_parse::<usize>("tile")?;
    let noise = args.get_parse::<f64>("noise").unwrap_or(0.0);
    let seed = args.get_parse::<u64>("seed").unwrap_or(0);
    let problem = chemcost::sim::Problem::new(o, v);
    let cfg = chemcost::sim::Config::new(nodes, tile);
    let trace = chemcost::sim::trace::trace_iteration(&problem, &cfg, &machine, noise, seed)
        .map_err(|e| e.to_string())?;
    chemcost::obs::event!(
        chemcost::obs::Level::Info,
        "trace.done",
        o = o,
        v = v,
        nodes = nodes,
        tile = tile,
        tasks = trace.n_tasks(),
        makespan_s = trace.makespan,
        utilization = trace.utilization(),
    );
    let jsonl = trace.to_jsonl();
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} task records to {path}", trace.n_tasks());
        }
        None => print!("{jsonl}"),
    }
    eprintln!("{}", trace.summary());
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let machine_name = args.get("machine")?;
    by_name(machine_name)
        .ok_or_else(|| format!("unknown machine {machine_name:?} (aurora|frontier)"))?;
    let model_path = PathBuf::from(args.get("model")?);
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080");
    let workers = match args.options.get("workers") {
        Some(_) => args.get_parse::<usize>("workers")?,
        None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
    };
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }

    let model_name = model_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "default".to_string());
    let registry = std::sync::Arc::new(ModelRegistry::new());
    registry.load_file(&model_name, machine_name, &model_path)?;
    registry.set_default(machine_name, &model_name)?;

    let default_deadline_ms = match args.options.get("default-deadline-ms") {
        Some(_) => {
            let ms = args.get_parse::<u64>("default-deadline-ms")?;
            if ms == 0 {
                return Err("--default-deadline-ms must be at least 1".into());
            }
            Some(ms)
        }
        None => None,
    };
    let router = Router::new(registry).with_default_deadline_ms(default_deadline_ms);
    let mut server =
        Server::bind(addr, router, workers).map_err(|e| format!("binding {addr}: {e}"))?;
    if args.options.contains_key("queue-cap") {
        let cap = args.get_parse::<usize>("queue-cap")?;
        if cap == 0 {
            return Err("--queue-cap must be at least 1".into());
        }
        server = server.with_queue_cap(cap);
    }
    if args.options.contains_key("max-conns") {
        let max = args.get_parse::<usize>("max-conns")?;
        if max == 0 {
            return Err("--max-conns must be at least 1".into());
        }
        server = server.with_max_conns(max);
    }
    if args.options.contains_key("batch-window-us") || args.options.contains_key("batch-max") {
        let mut config = chemcost::serve::BatcherConfig::default();
        if args.options.contains_key("batch-window-us") {
            // Zero is legal: "never wait", flushing every submission as
            // its own (or an already-coalesced) batch.
            config.window =
                std::time::Duration::from_micros(args.get_parse::<u64>("batch-window-us")?);
        }
        if args.options.contains_key("batch-max") {
            let max_rows = args.get_parse::<usize>("batch-max")?;
            if max_rows == 0 {
                return Err("--batch-max must be at least 1".into());
            }
            config.max_rows = max_rows;
        }
        server = server.with_batch_config(config);
    }
    if args.options.contains_key("scrape-interval-ms") || args.options.contains_key("slo-file") {
        let mut config = chemcost::serve::HealthConfig {
            slos: chemcost::serve::builtin_slos(),
            ..Default::default()
        };
        if args.options.contains_key("scrape-interval-ms") {
            let ms = args.get_parse::<u64>("scrape-interval-ms")?;
            if ms == 0 {
                return Err("--scrape-interval-ms must be at least 1".into());
            }
            config.scrape_interval = std::time::Duration::from_millis(ms);
        }
        if let Some(path) = args.options.get("slo-file") {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let rules =
                chemcost::serve::parse_slo_file(&text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("loaded {} SLO rule(s) from {path}", rules.len());
            config.slos.extend(rules);
        }
        server = server.with_health(config);
    }
    let mut chaos_note = String::new();
    if let Some(profile) = args.options.get("chaos") {
        let profile = ChaosProfile::parse(profile)
            .ok_or_else(|| format!("unknown --chaos {profile:?} ({})", ChaosProfile::NAMES))?;
        let plane = std::sync::Arc::new(FaultPlane::from_profile(profile));
        chaos_note = format!(", CHAOS {} seed {}", profile.name(), plane.seed());
        server = server.with_faults(plane);
    }
    let bound = server.local_addr().map_err(|e| format!("local addr: {e}"))?;
    eprintln!(
        "chemcost-serve listening on http://{bound} \
         (model {model_name:?} for {machine_name}, {workers} workers, \
         queue capacity {}, max {} conns{chaos_note}; POST /v1/shutdown to stop)",
        server.queue_cap(),
        server.max_conns()
    );
    server.run().map_err(|e| format!("server error: {e}"))
}

/// `chemcost call` — one HTTP call through the retrying client. Prints
/// the response body to stdout and a short status line to stderr; the
/// exit code is 0 for 2xx, 1 otherwise, so scripts can branch on it.
fn cmd_call(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080");
    let path = args.get("path")?;
    if !path.starts_with('/') {
        return Err(format!("--path must start with '/', got {path:?}"));
    }
    let body = args.get("body").unwrap_or("");
    let method = match args.get("method") {
        Ok(m) => m.to_ascii_uppercase(),
        Err(_) if body.is_empty() => "GET".to_string(),
        Err(_) => "POST".to_string(),
    };
    let mut policy = RetryPolicy::default();
    if args.options.contains_key("retries") {
        policy.max_attempts = args.get_parse::<u32>("retries")?.saturating_add(1);
    }
    let mut client = Client::new(addr).with_policy(policy);
    if args.options.contains_key("deadline-ms") {
        client = client.with_deadline_ms(Some(args.get_parse::<u64>("deadline-ms")?));
    }
    let resp =
        client.call(&method, path, body.as_bytes()).map_err(|e| format!("{method} {path}: {e}"))?;
    eprintln!(
        "{} {} → {} ({} attempt{})",
        method,
        path,
        resp.status,
        resp.attempts,
        if resp.attempts == 1 { "" } else { "s" }
    );
    println!("{}", resp.text());
    if resp.status >= 400 {
        return Err(format!("server answered {}", resp.status));
    }
    Ok(())
}

/// `chemcost quality`: fetch and summarize a running daemon's
/// model-quality report (or, with `--next`, its ranked experiment plan).
fn cmd_quality(args: &Args) -> Result<(), String> {
    use chemcost::serve::json::Json;
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080");
    let path = if args.flag("next") { "/v1/quality/next_experiments" } else { "/v1/quality" };
    let client = Client::new(addr);
    let resp = client.call("GET", path, b"").map_err(|e| format!("GET {path}: {e}"))?;
    if resp.status >= 400 {
        return Err(format!("server answered {}: {}", resp.status, resp.text()));
    }
    let parsed = Json::parse(&resp.text()).map_err(|e| format!("bad response JSON: {e}"))?;
    if args.flag("next") {
        match parsed.get("model").and_then(Json::as_str) {
            Some(model) => println!(
                "next experiments for {} v{} on {} (strategy {}):",
                model,
                parsed.get("model_version").and_then(Json::as_usize).unwrap_or(0),
                parsed.get("machine").and_then(Json::as_str).unwrap_or("?"),
                parsed.get("strategy").and_then(Json::as_str).unwrap_or("US"),
            ),
            None => println!("no serving group has observations yet"),
        }
        let configs = parsed.get("configs").and_then(Json::as_array);
        match configs {
            Some(configs) if !configs.is_empty() => {
                // The ranked table can be long; write it so that a
                // closed pipe (`chemcost quality --next | head`) ends
                // the listing instead of panicking on broken pipe.
                use std::io::Write;
                let mut out = std::io::stdout().lock();
                let _ = writeln!(
                    out,
                    "{:>4} {:>6} {:>6} {:>6} {:>6} {:>10}",
                    "#", "O", "V", "nodes", "tile", "score"
                );
                for (i, c) in configs.iter().enumerate() {
                    if writeln!(
                        out,
                        "{:>4} {:>6} {:>6} {:>6} {:>6} {:>10.4}",
                        i + 1,
                        c.get("o").and_then(Json::as_usize).unwrap_or(0),
                        c.get("v").and_then(Json::as_usize).unwrap_or(0),
                        c.get("nodes").and_then(Json::as_usize).unwrap_or(0),
                        c.get("tile").and_then(Json::as_usize).unwrap_or(0),
                        c.get("score").and_then(Json::as_f64).unwrap_or(f64::NAN),
                    )
                    .is_err()
                    {
                        break;
                    }
                }
            }
            _ => {
                if let Some(reason) = parsed.get("reason").and_then(Json::as_str) {
                    println!("no experiments ranked: {reason}");
                }
            }
        }
        return Ok(());
    }
    if let Some(build) = parsed.get("build") {
        println!(
            "build: {} (git {}, dirty {})",
            build.get("version").and_then(Json::as_str).unwrap_or("?"),
            build.get("git_sha").and_then(Json::as_str).unwrap_or("?"),
            build.get("dirty").and_then(Json::as_str).unwrap_or("?"),
        );
    }
    if let (Some(journal), Some(obs)) = (parsed.get("journal"), parsed.get("observations")) {
        println!(
            "journal: {}/{} pending; observations: {} accepted, {} rejected",
            journal.get("pending").and_then(Json::as_usize).unwrap_or(0),
            journal.get("capacity").and_then(Json::as_usize).unwrap_or(0),
            obs.get("accepted").and_then(Json::as_usize).unwrap_or(0),
            obs.get("rejected").and_then(Json::as_usize).unwrap_or(0),
        );
    }
    let groups = parsed.get("groups").and_then(Json::as_array);
    match groups {
        Some(groups) if !groups.is_empty() => {
            for g in groups {
                let fmt = |key: &str| match g.get(key).and_then(Json::as_f64) {
                    Some(x) if x.is_finite() => format!("{x:.4}"),
                    _ => "n/a".to_string(),
                };
                println!(
                    "{} v{} on {}: {} obs (window {}), mape {}, bias_s {}, p50/p90/p99 {}/{}/{}, calib {}, drift_trips {}{}",
                    g.get("model").and_then(Json::as_str).unwrap_or("?"),
                    g.get("version").and_then(Json::as_usize).unwrap_or(0),
                    g.get("machine").and_then(Json::as_str).unwrap_or("?"),
                    g.get("observations").and_then(Json::as_usize).unwrap_or(0),
                    g.get("window").and_then(Json::as_usize).unwrap_or(0),
                    fmt("mape"),
                    fmt("bias_seconds"),
                    fmt("residual_p50"),
                    fmt("residual_p90"),
                    fmt("residual_p99"),
                    fmt("calibration_ratio"),
                    g.get("drift_trips").and_then(Json::as_usize).unwrap_or(0),
                    if g.get("degraded").and_then(Json::as_bool) == Some(true) {
                        "  ** DEGRADED **"
                    } else {
                        ""
                    },
                );
            }
        }
        _ => println!("no serving groups tracked"),
    }
    Ok(())
}

/// Column header shared by `top`'s one-shot sections and `--watch`.
fn timeline_header() -> String {
    format!(
        "{:>9} {:>4} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12} {:<18} request",
        "total_ms",
        "st",
        "read_us",
        "queue_us",
        "batch_us",
        "hand_us",
        "reord_us",
        "write_us",
        "batch",
        "trace"
    )
}

/// One flight-recorder entry as a `top` table row.
fn timeline_row(e: &chemcost::serve::json::Json) -> String {
    use chemcost::serve::json::Json;
    let stage = |name: &str| {
        e.get("stages").and_then(|s| s.get(name)).and_then(Json::as_f64).unwrap_or(0.0)
    };
    let batch = e.get("batch");
    let batch_col = match batch.and_then(|b| b.get("calls")).and_then(Json::as_usize) {
        Some(0) | None => "-".to_string(),
        Some(_) => format!(
            "{}r@{}",
            batch.and_then(|b| b.get("rows")).and_then(Json::as_usize).unwrap_or(0),
            batch.and_then(|b| b.get("last_reason")).and_then(Json::as_str).unwrap_or("?"),
        ),
    };
    format!(
        "{:>9.3} {:>4} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>12} {:<18} {} {}",
        e.get("total_us").and_then(Json::as_f64).unwrap_or(0.0) / 1000.0,
        e.get("status").and_then(Json::as_usize).unwrap_or(0),
        stage("read_us"),
        stage("queue_us"),
        stage("batch_wait_us"),
        stage("handler_us"),
        stage("reorder_us"),
        stage("write_us"),
        batch_col,
        e.get("trace").and_then(Json::as_str).unwrap_or(""),
        e.get("method").and_then(Json::as_str).unwrap_or("?"),
        e.get("path").and_then(Json::as_str).unwrap_or("?"),
    )
}

/// `chemcost top --watch`: tail the flight recorder. Each poll asks
/// `/debug/requests?since_us=<high-water-mark>` so the daemon filters
/// server-side and only never-seen completions come back; rows stream
/// until Ctrl-C or the output pipe closes.
fn top_watch(args: &Args) -> Result<(), String> {
    use chemcost::serve::json::Json;
    use std::io::Write;
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080");
    let interval_ms = args.get_parse::<u64>("interval-ms").unwrap_or(1000).max(50);
    let route = args.options.get("route");
    let client = Client::new(addr);
    let mut out = std::io::stdout().lock();
    if writeln!(out, "{}", timeline_header()).is_err() {
        return Ok(());
    }
    let mut since_us: u64 = 0;
    loop {
        let mut path = format!("/debug/requests?since_us={since_us}");
        if let Some(route) = route {
            path.push_str("&route=");
            path.push_str(route);
        }
        let resp = client.call("GET", &path, b"").map_err(|e| format!("GET {path}: {e}"))?;
        if resp.status >= 400 {
            return Err(format!("server answered {}: {}", resp.status, resp.text()));
        }
        let parsed = Json::parse(&resp.text()).map_err(|e| format!("bad response JSON: {e}"))?;
        if let Some(entries) = parsed.get("recent").and_then(Json::as_array) {
            for e in entries {
                since_us =
                    since_us.max(e.get("ts_us").and_then(Json::as_f64).unwrap_or(0.0) as u64);
                if writeln!(out, "{}", timeline_row(e)).is_err() {
                    return Ok(()); // downstream pipe closed (`| head`)
                }
            }
            let _ = out.flush();
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// `chemcost top`: fetch a running daemon's flight recorder
/// (`GET /debug/requests`) and render the slowest and most recent
/// request timelines with per-stage attribution. `--slowest` or
/// `--recent` limits the output to one section; `--n` caps rows;
/// `--route` keeps only paths containing the substring; `--watch`
/// tails new completions instead (see [`top_watch`]).
fn cmd_top(args: &Args) -> Result<(), String> {
    use chemcost::serve::json::Json;
    use std::io::Write;
    if args.flag("watch") {
        return top_watch(args);
    }
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080");
    if args.flag("slowest") && args.flag("recent") {
        return Err("pick at most one of --slowest, --recent".into());
    }
    let limit = args.get_parse::<usize>("n").unwrap_or(usize::MAX).max(1);
    let client = Client::new(addr);
    let path = match args.options.get("route") {
        Some(route) => format!("/debug/requests?route={route}"),
        None => "/debug/requests".to_string(),
    };
    let resp = client.call("GET", &path, b"").map_err(|e| format!("GET {path}: {e}"))?;
    if resp.status >= 400 {
        return Err(format!("server answered {}: {}", resp.status, resp.text()));
    }
    let parsed = Json::parse(&resp.text()).map_err(|e| format!("bad response JSON: {e}"))?;
    println!(
        "{} requests completed; keeping slowest {} + most recent {}",
        parsed.get("completed").and_then(Json::as_usize).unwrap_or(0),
        parsed.get("slowest_cap").and_then(Json::as_usize).unwrap_or(0),
        parsed.get("recent_cap").and_then(Json::as_usize).unwrap_or(0),
    );
    // Broken-pipe-safe listing (`chemcost top | head`), like `quality`.
    let mut out = std::io::stdout().lock();
    let mut section = |title: &str, key: &str, newest_first: bool| {
        let Some(entries) = parsed.get(key).and_then(Json::as_array) else { return };
        if entries.is_empty() {
            let _ = writeln!(out, "\n{title}: none yet");
            return;
        }
        let _ = writeln!(out, "\n{title}:");
        let _ = writeln!(out, "{}", timeline_header());
        let rows: Vec<&Json> = if newest_first {
            entries.iter().rev().take(limit).collect()
        } else {
            entries.iter().take(limit).collect()
        };
        for e in rows {
            if writeln!(out, "{}", timeline_row(e)).is_err() {
                break;
            }
        }
    };
    if !args.flag("recent") {
        section("slowest", "slowest", false);
    }
    if !args.flag("slowest") {
        section("most recent (newest first)", "recent", true);
    }
    Ok(())
}

/// `chemcost health`: SLO verdicts from a running daemon — one line per
/// objective with its alert state, current burn-rate value against the
/// threshold, and an ASCII sparkline of the recent evaluation history
/// (`/v1/health` + `/debug/slo`). `--window 5m` trims the sparkline to
/// the last five minutes; `--watch` redraws every second. Exits
/// non-zero when a critical SLO is firing (the daemon answers 503), so
/// scripts can gate on it.
fn cmd_health(args: &Args) -> Result<(), String> {
    use chemcost::serve::json::Json;
    use std::io::Write;
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080");
    let window = match args.options.get("window") {
        Some(w) => Some(chemcost::serve::parse_duration(w).map_err(|e| format!("--window: {e}"))?),
        None => None,
    };
    let watch = args.flag("watch");
    let client = Client::new(addr);
    loop {
        let resp =
            client.call("GET", "/v1/health", b"").map_err(|e| format!("GET /v1/health: {e}"))?;
        // 503 is the "critical SLO firing" verdict, not a transport
        // failure — render it like any other report.
        if resp.status >= 400 && resp.status != 503 {
            return Err(format!("server answered {}: {}", resp.status, resp.text()));
        }
        let parsed = Json::parse(&resp.text()).map_err(|e| format!("bad response JSON: {e}"))?;
        let status = parsed.get("status").and_then(Json::as_str).unwrap_or("?").to_string();
        if status == "disabled" {
            println!("health plane disabled on this daemon (started without it)");
            return Ok(());
        }
        let debug =
            client.call("GET", "/debug/slo", b"").map_err(|e| format!("GET /debug/slo: {e}"))?;
        let dbg = Json::parse(&debug.text()).map_err(|e| format!("bad response JSON: {e}"))?;
        let mut sparks: HashMap<String, String> = HashMap::new();
        if let Some(slos) = dbg.get("slos").and_then(Json::as_array) {
            for s in slos {
                let Some(name) = s.get("name").and_then(Json::as_str) else { continue };
                let Some(history) = s.get("history").and_then(Json::as_array) else { continue };
                let point_us = |p: &Json| p.get("unix_us").and_then(Json::as_f64).unwrap_or(0.0);
                let newest = history.iter().map(&point_us).fold(0.0, f64::max);
                // Trim against the server's own clock (the newest
                // point), so a skewed local clock cannot blank the line.
                let cutoff = match window {
                    Some(w) => newest - w.as_micros() as f64,
                    None => f64::NEG_INFINITY,
                };
                let values: Vec<f64> = history
                    .iter()
                    .filter(|p| point_us(p) >= cutoff)
                    .map(|p| p.get("value").and_then(Json::as_f64).unwrap_or(f64::NAN))
                    .collect();
                sparks.insert(name.to_string(), chemcost::serve::sparkline(&values, 32));
            }
        }
        if watch {
            // Clear and home, like watch(1).
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "health: {} (HTTP {}) — {} firing, {} pending; {} samples, {} evaluations",
            status,
            resp.status,
            parsed.get("firing").and_then(Json::as_usize).unwrap_or(0),
            parsed.get("pending").and_then(Json::as_usize).unwrap_or(0),
            parsed.get("samples").and_then(Json::as_usize).unwrap_or(0),
            parsed.get("evaluations").and_then(Json::as_usize).unwrap_or(0),
        );
        let mut out = std::io::stdout().lock();
        if let Some(slos) = parsed.get("slos").and_then(Json::as_array) {
            for s in slos {
                let name = s.get("name").and_then(Json::as_str).unwrap_or("?");
                let fmt = |key: &str| match s.get(key).and_then(Json::as_f64) {
                    Some(x) if x.is_finite() => format!("{x:>8.4}"),
                    _ => format!("{:>8}", "n/a"),
                };
                if writeln!(
                    out,
                    "{:>9}{} {:<24} {} {} {}  |{}|",
                    s.get("state").and_then(Json::as_str).unwrap_or("?"),
                    if s.get("critical").and_then(Json::as_bool) == Some(true) { "!" } else { " " },
                    name,
                    fmt("value"),
                    s.get("cmp").and_then(Json::as_str).unwrap_or("?"),
                    fmt("threshold"),
                    sparks.get(name).map(String::as_str).unwrap_or(""),
                )
                .is_err()
                {
                    return Ok(()); // downstream pipe closed
                }
            }
        }
        let _ = out.flush();
        drop(out);
        if !watch {
            if resp.status == 503 {
                return Err("critical SLO firing (HTTP 503)".into());
            }
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(1000));
    }
}

/// `chemcost lifecycle`: the retrain/shadow/promote state of a running
/// daemon, plus operator overrides — `--promote` swaps the current shadow
/// candidate in immediately, `--rollback` restores the version the last
/// promotion displaced, `--freeze`/`--unfreeze` pin or release a group.
fn cmd_lifecycle(args: &Args) -> Result<(), String> {
    use chemcost::serve::json::Json;
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080");
    let client = Client::new(addr);
    let picked =
        [args.flag("promote"), args.flag("rollback"), args.flag("freeze"), args.flag("unfreeze")];
    if picked.iter().filter(|&&p| p).count() > 1 {
        return Err("pick at most one of --promote, --rollback, --freeze, --unfreeze".into());
    }
    let mut fields: Vec<(&'static str, Json)> = Vec::new();
    if let Ok(model) = args.get("model") {
        fields.push(("model", model.into()));
    }
    if let Ok(machine) = args.get("machine") {
        fields.push(("machine", machine.into()));
    }
    let action = if args.flag("promote") {
        Some("promote")
    } else if args.flag("rollback") {
        Some("rollback")
    } else if args.flag("freeze") {
        Some("freeze")
    } else if args.flag("unfreeze") {
        fields.push(("frozen", Json::Bool(false)));
        Some("freeze")
    } else {
        None
    };
    if let Some(action) = action {
        let path = format!("/v1/lifecycle/{action}");
        let body = Json::obj(fields).encode();
        let resp =
            client.call("POST", &path, body.as_bytes()).map_err(|e| format!("POST {path}: {e}"))?;
        if resp.status >= 400 {
            return Err(format!("server answered {}: {}", resp.status, resp.text()));
        }
        println!("{}", resp.text());
        return Ok(());
    }
    let resp =
        client.call("GET", "/v1/lifecycle", b"").map_err(|e| format!("GET /v1/lifecycle: {e}"))?;
    if resp.status >= 400 {
        return Err(format!("server answered {}: {}", resp.status, resp.text()));
    }
    let parsed = Json::parse(&resp.text()).map_err(|e| format!("bad response JSON: {e}"))?;
    println!(
        "trainer queue depth: {}",
        parsed.get("queue_depth").and_then(Json::as_usize).unwrap_or(0)
    );
    match parsed.get("groups").and_then(Json::as_array) {
        Some(groups) if !groups.is_empty() => {
            for g in groups {
                println!(
                    "{} on {}: state {}{}, retrains {}, shadow {} obs (mape {})",
                    g.get("model").and_then(Json::as_str).unwrap_or("?"),
                    g.get("machine").and_then(Json::as_str).unwrap_or("?"),
                    g.get("state").and_then(Json::as_str).unwrap_or("?"),
                    if g.get("frozen").and_then(Json::as_bool) == Some(true) {
                        " (FROZEN)"
                    } else {
                        ""
                    },
                    g.get("retrains").and_then(Json::as_usize).unwrap_or(0),
                    g.get("shadow_len").and_then(Json::as_usize).unwrap_or(0),
                    match g.get("shadow_mape").and_then(Json::as_f64) {
                        Some(x) if x.is_finite() => format!("{x:.4}"),
                        _ => "n/a".to_string(),
                    },
                );
                if let Some(lineage) = g.get("lineage").filter(|l| !matches!(**l, Json::Null)) {
                    println!(
                        "  lineage: parent v{}, {} observed rows, fit {} ms, seed {}",
                        lineage.get("parent_version").and_then(Json::as_usize).unwrap_or(0),
                        lineage.get("observed_rows").and_then(Json::as_usize).unwrap_or(0),
                        lineage.get("fit_duration_ms").and_then(Json::as_usize).unwrap_or(0),
                        lineage.get("seed").and_then(Json::as_f64).unwrap_or(0.0),
                    );
                }
                if let Some(last) = g.get("last_outcome").and_then(Json::as_str) {
                    println!("  last: {last}");
                }
            }
        }
        _ => println!("no lifecycle groups tracked"),
    }
    Ok(())
}

/// `chemcost version`: the build identity also exported as
/// `chemcost_build_info` on `/metrics` and under `build` in `/v1/quality`.
fn cmd_version() -> Result<(), String> {
    let (version, git_sha, dirty) = chemcost::serve::metrics::build_info();
    println!("chemcost {version} (git {git_sha}, dirty {dirty})");
    Ok(())
}

fn main() -> ExitCode {
    // Structured logging: CHEMCOST_LOG=level turns on stderr records,
    // CHEMCOST_LOG_JSON=path adds a JSONL copy. Silent when unset.
    chemcost::obs::init_from_env();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "generate" => cmd_generate(&args),
        "train" => cmd_train(&args),
        "advise" => cmd_advise(&args),
        "evaluate" => cmd_evaluate(&args),
        "importance" => cmd_importance(&args),
        "trace" => cmd_trace(&args),
        "serve" => cmd_serve(&args),
        "call" => cmd_call(&args),
        "quality" => cmd_quality(&args),
        "top" => cmd_top(&args),
        "health" => cmd_health(&args),
        "lifecycle" => cmd_lifecycle(&args),
        "version" | "--version" | "-V" => cmd_version(),
        "molecules" => cmd_molecules(),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    // Push anything still sitting in buffered log sinks (the JSONL file
    // from CHEMCOST_LOG_JSON) before the process exits.
    chemcost::obs::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = parse_args(&argv(&["advise", "--o", "120", "--v", "900"])).unwrap();
        assert_eq!(a.command, "advise");
        assert_eq!(a.get("o").unwrap(), "120");
        assert_eq!(a.get_parse::<usize>("v").unwrap(), 900);
        let a =
            parse_args(&argv(&["train", "--data", "d.csv", "--out", "m.ccgb", "--fast"])).unwrap();
        assert!(a.flag("fast"));
        assert!(!a.flag("slow"));
    }

    #[test]
    fn missing_subcommand_errors() {
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn malformed_option_errors() {
        assert!(parse_args(&argv(&["train", "data.csv"])).is_err());
    }

    #[test]
    fn missing_option_reported_by_name() {
        let a = parse_args(&argv(&["train"])).unwrap();
        let err = a.get("data").unwrap_err();
        assert!(err.contains("--data"));
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse_args(&argv(&["train", "--fast", "--data", "x.csv"])).unwrap();
        assert!(a.flag("fast"));
        assert_eq!(a.get("data").unwrap(), "x.csv");
    }

    #[test]
    fn equals_syntax_parses() {
        let a = parse_args(&argv(&["advise", "--o=120", "--v=900", "--goal=pareto"])).unwrap();
        assert_eq!(a.get_parse::<usize>("o").unwrap(), 120);
        assert_eq!(a.get("goal").unwrap(), "pareto");
    }

    #[test]
    fn equals_syntax_keeps_later_equals_signs() {
        let a = parse_args(&argv(&["generate", "--out=a=b.csv", "--machine", "aurora"])).unwrap();
        assert_eq!(a.get("out").unwrap(), "a=b.csv");
    }

    #[test]
    fn equals_without_value_errors() {
        let err = parse_args(&argv(&["advise", "--goal="])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn unknown_option_rejected_with_command_context() {
        let err = parse_args(&argv(&["train", "--modle", "x.ccgb"])).unwrap_err();
        assert!(err.contains("--modle") && err.contains("'train'"), "{err}");
        let err = parse_args(&argv(&["advise", "--budge=3"])).unwrap_err();
        assert!(err.contains("--budge"), "{err}");
    }

    #[test]
    fn options_on_optionless_command_rejected() {
        assert!(parse_args(&argv(&["molecules", "--basis", "cc-pvtz"])).is_err());
        assert!(parse_args(&argv(&["help", "--verbose"])).is_err());
    }

    #[test]
    fn unknown_command_defers_to_usage_error() {
        // Options on an unknown command parse; main reports the command.
        let a = parse_args(&argv(&["frobnicate", "--whatever", "1"])).unwrap();
        assert_eq!(a.command, "frobnicate");
    }

    #[test]
    fn chaos_and_deadline_serve_options_accepted() {
        let a = parse_args(&argv(&[
            "serve",
            "--model=m.ccgb",
            "--machine=aurora",
            "--chaos=poison-reload",
            "--default-deadline-ms=250",
        ]))
        .unwrap();
        assert_eq!(a.get("chaos").unwrap(), "poison-reload");
        assert_eq!(a.get_parse::<u64>("default-deadline-ms").unwrap(), 250);
        // Typos are still rejected.
        assert!(parse_args(&argv(&["serve", "--model=m.ccgb", "--kaos=all"])).is_err());
    }

    #[test]
    fn call_options_accepted() {
        let a = parse_args(&argv(&[
            "call",
            "--path=/v1/advise",
            "--body",
            r#"{"o":120,"v":900}"#,
            "--deadline-ms=500",
            "--retries=2",
        ]))
        .unwrap();
        assert_eq!(a.get("path").unwrap(), "/v1/advise");
        assert_eq!(a.get_parse::<u64>("deadline-ms").unwrap(), 500);
        assert_eq!(a.get_parse::<u32>("retries").unwrap(), 2);
    }

    #[test]
    fn quality_and_version_options_accepted() {
        let a = parse_args(&argv(&["quality", "--addr=127.0.0.1:9100", "--next"])).unwrap();
        assert_eq!(a.get("addr").unwrap(), "127.0.0.1:9100");
        assert!(a.flag("next"));
        // version takes no options; typos are rejected with context.
        assert!(parse_args(&argv(&["version"])).is_ok());
        assert!(parse_args(&argv(&["--version"])).is_ok());
        assert!(parse_args(&argv(&["version", "--short"])).is_err());
        assert!(parse_args(&argv(&["quality", "--adr=x"])).is_err());
    }

    #[test]
    fn top_options_accepted() {
        let a = parse_args(&argv(&["top", "--addr=127.0.0.1:9100", "--slowest", "--n=5"])).unwrap();
        assert_eq!(a.get("addr").unwrap(), "127.0.0.1:9100");
        assert!(a.flag("slowest"));
        assert_eq!(a.get_parse::<usize>("n").unwrap(), 5);
        assert!(parse_args(&argv(&["top", "--recent"])).is_ok());
        assert!(parse_args(&argv(&["top", "--slow"])).is_err());
    }

    #[test]
    fn top_watch_options_accepted() {
        let a = parse_args(&argv(&["top", "--watch", "--route=/v1/advise", "--interval-ms=250"]))
            .unwrap();
        assert!(a.flag("watch"));
        assert_eq!(a.get("route").unwrap(), "/v1/advise");
        assert_eq!(a.get_parse::<u64>("interval-ms").unwrap(), 250);
        assert!(parse_args(&argv(&["top", "--wach"])).is_err());
    }

    #[test]
    fn health_options_accepted() {
        let a = parse_args(&argv(&["health", "--addr=127.0.0.1:9100", "--watch", "--window=5m"]))
            .unwrap();
        assert_eq!(a.get("addr").unwrap(), "127.0.0.1:9100");
        assert!(a.flag("watch"));
        assert_eq!(a.get("window").unwrap(), "5m");
        assert!(parse_args(&argv(&["health", "--widow=5m"])).is_err());
    }

    #[test]
    fn serve_health_options_accepted() {
        let a = parse_args(&argv(&[
            "serve",
            "--model=m.ccgb",
            "--machine=aurora",
            "--scrape-interval-ms=500",
            "--slo-file=slo.toml",
        ]))
        .unwrap();
        assert_eq!(a.get_parse::<u64>("scrape-interval-ms").unwrap(), 500);
        assert_eq!(a.get("slo-file").unwrap(), "slo.toml");
        assert!(parse_args(&argv(&["serve", "--model=m.ccgb", "--slofile=x"])).is_err());
    }

    #[test]
    fn lifecycle_options_accepted() {
        let a = parse_args(&argv(&[
            "lifecycle",
            "--addr=127.0.0.1:9100",
            "--model=gb",
            "--machine=aurora",
            "--promote",
        ]))
        .unwrap();
        assert_eq!(a.get("addr").unwrap(), "127.0.0.1:9100");
        assert_eq!(a.get("model").unwrap(), "gb");
        assert!(a.flag("promote"));
        assert!(parse_args(&argv(&["lifecycle", "--rollback"])).is_ok());
        assert!(parse_args(&argv(&["lifecycle", "--freeze"])).is_ok());
        assert!(parse_args(&argv(&["lifecycle", "--unfreeze"])).is_ok());
        assert!(parse_args(&argv(&["lifecycle", "--promot"])).is_err());
    }

    #[test]
    fn version_prints_the_build_triple() {
        let (version, _, _) = chemcost::serve::metrics::build_info();
        assert!(!version.is_empty());
        assert!(cmd_version().is_ok());
    }

    #[test]
    fn serve_options_accepted() {
        let a = parse_args(&argv(&[
            "serve",
            "--model=m.ccgb",
            "--machine",
            "aurora",
            "--addr=127.0.0.1:0",
            "--workers=2",
        ]))
        .unwrap();
        assert_eq!(a.get("addr").unwrap(), "127.0.0.1:0");
        assert_eq!(a.get_parse::<usize>("workers").unwrap(), 2);
    }

    #[test]
    fn serve_data_plane_options_accepted() {
        let a = parse_args(&argv(&[
            "serve",
            "--model=m.ccgb",
            "--machine=aurora",
            "--max-conns=2048",
            "--batch-window-us=150",
            "--batch-max=512",
        ]))
        .unwrap();
        assert_eq!(a.get_parse::<usize>("max-conns").unwrap(), 2048);
        assert_eq!(a.get_parse::<u64>("batch-window-us").unwrap(), 150);
        assert_eq!(a.get_parse::<usize>("batch-max").unwrap(), 512);
        // Typos are rejected like any other unknown option.
        assert!(parse_args(&argv(&["serve", "--model=m.ccgb", "--batch-window=1"])).is_err());
        assert!(parse_args(&argv(&["serve", "--model=m.ccgb", "--maxconns=9"])).is_err());
    }
}
