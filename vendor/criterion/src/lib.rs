//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness exposing the API subset the
//! workspace's benches use: `Criterion`, `benchmark_group` with
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//! No statistical analysis or HTML reports — each benchmark prints its
//! per-iteration median, mean, and min over the sampled runs. A filter
//! substring may be passed on the command line (`cargo bench -- predict`)
//! exactly like real criterion.
//!
//! `--save-baseline NAME` (also criterion-compatible) additionally
//! records every benchmark's median into `BENCH_NAME.json` — or the
//! path in `CHEMCOST_BENCH_JSON` when set — merging with any results
//! already in the file so several bench binaries can contribute to one
//! baseline. CI's bench-regression job diffs two such files with the
//! `bench_compare` binary.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Units processed per iteration; used to annotate reports with a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Things usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples. Fast closures are
    /// batched so each sample measures at least ~1 ms of work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch calibration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed();
        let batch = if once < Duration::from_micros(100) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    /// Time with a caller-supplied measurement: `f` receives an
    /// iteration count and returns the total elapsed time for that many
    /// iterations. This is how benchmarks report quantities that are
    /// not a simple start-to-stop wall clock — e.g. a tail latency
    /// measured across concurrent clients, returned as `p99 * iters` so
    /// the reported per-iteration time IS the p99.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let iters = 1u64;
            self.samples.push(f(iters) / iters as u32);
        }
    }

    /// Median per-iteration time over the collected samples.
    fn median(&self) -> Option<Duration> {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted.get(sorted.len() / 2).copied()
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let rate = throughput
            .map(|t| {
                let (n, unit) = match t {
                    Throughput::Elements(n) => (n, "elem/s"),
                    Throughput::Bytes(n) => (n, "B/s"),
                };
                format!("  {:.3e} {unit}", n as f64 / median.as_secs_f64().max(1e-12))
            })
            .unwrap_or_default();
        println!(
            "{name:<48} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}  ({} samples){rate}",
            sorted.len()
        );
    }
}

/// Command-line options recognized by the harness.
#[derive(Debug, Default, Clone, PartialEq)]
struct CliArgs {
    /// Substring filter on benchmark names (first free argument).
    filter: Option<String>,
    /// Baseline name from `--save-baseline NAME` / `--save-baseline=NAME`.
    save_baseline: Option<String>,
}

/// Parse bench CLI arguments (everything after the binary name). The
/// value following `--save-baseline` is an option value, **not** a
/// filter, so `cargo bench -- --save-baseline pr` runs every benchmark.
fn parse_cli<I: Iterator<Item = String>>(mut args: I) -> CliArgs {
    let mut parsed = CliArgs::default();
    while let Some(arg) = args.next() {
        if arg == "--save-baseline" {
            parsed.save_baseline = args.next();
        } else if let Some(name) = arg.strip_prefix("--save-baseline=") {
            parsed.save_baseline = Some(name.to_string());
        } else if arg == "--bench" || arg.starts_with('-') {
            // Harness flags (real criterion accepts many); ignored.
        } else if parsed.filter.is_none() {
            parsed.filter = Some(arg);
        }
    }
    parsed
}

/// Process-wide baseline recorder, shared by every group so one JSON
/// file collects the whole binary's medians.
struct BaselineSaver {
    path: PathBuf,
    baseline: String,
    /// name → median nanoseconds per iteration; pre-seeded from the
    /// file on disk so successive bench binaries merge, not clobber.
    results: Mutex<BTreeMap<String, f64>>,
}

impl BaselineSaver {
    /// Build from parsed args: `None` unless `--save-baseline` was given.
    /// `CHEMCOST_BENCH_JSON` overrides the default `BENCH_<name>.json`
    /// output path (cargo runs bench binaries from the package root, so
    /// CI pins an absolute path).
    fn from_args(args: &CliArgs) -> Option<BaselineSaver> {
        let baseline = args.save_baseline.clone()?;
        let path = std::env::var_os("CHEMCOST_BENCH_JSON")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(format!("BENCH_{baseline}.json")));
        let results = std::fs::read_to_string(&path)
            .ok()
            .map(|text| parse_results(&text))
            .unwrap_or_default();
        Some(BaselineSaver { path, baseline, results: Mutex::new(results) })
    }

    /// Record one median and rewrite the file (a handful of benchmarks,
    /// so write-per-result keeps partial runs useful).
    fn record(&self, name: &str, median: Duration) {
        let mut results = self.results.lock().unwrap();
        results.insert(name.to_string(), median.as_nanos() as f64);
        let _ = std::fs::write(&self.path, render_results(&self.baseline, &results));
    }
}

/// Serialize a baseline file: one `"name": ns` pair per line, sorted,
/// so diffs between committed baselines stay reviewable.
fn render_results(baseline: &str, results: &BTreeMap<String, f64>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"baseline\": \"{}\",\n", escape(baseline)));
    out.push_str("  \"unit\": \"median_ns_per_iter\",\n");
    out.push_str("  \"results\": {\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\": {ns:.1}{sep}\n", escape(name)));
    }
    out.push_str("  }\n}\n");
    out
}

/// Parse the `results` object back out of a baseline file. Line-based:
/// this reads only the format `render_results` writes (one pair per
/// line), which is all the merge path needs.
fn parse_results(text: &str) -> BTreeMap<String, f64> {
    let mut results = BTreeMap::new();
    let mut in_results = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"results\"") {
            in_results = true;
            continue;
        }
        if !in_results {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        if let Some((key, value)) = line.split_once(':') {
            let key = key.trim().trim_matches('"').replace("\\\"", "\"").replace("\\\\", "\\");
            if let Ok(ns) = value.trim().trim_end_matches(',').parse::<f64>() {
                results.insert(key, ns);
            }
        }
    }
    results
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn global_saver() -> Option<&'static BaselineSaver> {
    static SAVER: OnceLock<Option<BaselineSaver>> = OnceLock::new();
    SAVER.get_or_init(|| BaselineSaver::from_args(&parse_cli(std::env::args().skip(1)))).as_ref()
}

/// Benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let args = parse_cli(std::env::args().skip(1));
        Self { filter: args.filter, sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(&id.into_id(), sample_size, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &self,
        name: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { samples: Vec::new(), sample_size };
        f(&mut b);
        b.report(name, throughput);
        if let (Some(saver), Some(median)) = (global_saver(), b.median()) {
            saver.record(name, median);
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with units-per-iteration so the
    /// report includes a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim ignores it (sample
    /// duration is governed by `sample_size` and auto-batching).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&name, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&name, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { filter: None, sample_size: 3 };
        let mut runs = 0u32;
        c.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                std::thread::sleep(Duration::from_micros(200));
            })
        });
        assert!(runs >= 3, "closure ran {runs} times");
    }

    #[test]
    fn group_honors_sample_size_and_inputs() {
        let mut c = Criterion { filter: None, sample_size: 10 };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| {
                seen = d.len();
                d.iter().sum::<u64>()
            })
        });
        group.finish();
        assert_eq!(seen, 3);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion { filter: Some("match_me".into()), sample_size: 2 };
        let mut ran = false;
        c.run_one("other_name", 2, None, |_b| ran = true);
        assert!(!ran);
        c.run_one("does_match_me_yes", 2, None, |_b| ran = true);
        assert!(ran);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }

    fn cli(args: &[&str]) -> CliArgs {
        parse_cli(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn save_baseline_value_is_not_a_filter() {
        let parsed = cli(&["--save-baseline", "pr"]);
        assert_eq!(parsed.save_baseline.as_deref(), Some("pr"));
        assert_eq!(parsed.filter, None, "baseline name must not filter benchmarks");

        let parsed = cli(&["--save-baseline=main", "gemm", "--bench"]);
        assert_eq!(parsed.save_baseline.as_deref(), Some("main"));
        assert_eq!(parsed.filter.as_deref(), Some("gemm"));
    }

    #[test]
    fn results_render_parse_roundtrip_and_merge() {
        let mut results = BTreeMap::new();
        results.insert("serve/advise".to_string(), 1234.5);
        results.insert("sweep/flat_batched".to_string(), 9.0);
        let text = render_results("pr", &results);
        assert!(text.contains("\"baseline\": \"pr\""), "{text}");
        assert_eq!(parse_results(&text), results);

        // Merging: a second binary's saver seeds from the existing file.
        let dir = std::env::temp_dir().join(format!("criterion-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        std::fs::write(&path, &text).unwrap();
        let saver = BaselineSaver {
            path: path.clone(),
            baseline: "pr".to_string(),
            results: Mutex::new(parse_results(&std::fs::read_to_string(&path).unwrap())),
        };
        saver.record("other/bench", Duration::from_nanos(500));
        let merged = parse_results(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(merged.len(), 3, "{merged:?}");
        assert_eq!(merged["serve/advise"], 1234.5);
        assert_eq!(merged["other/bench"], 500.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_results_render_as_valid_empty_object() {
        let text = render_results("pr", &BTreeMap::new());
        assert!(text.contains("\"results\": {\n  }"), "{text}");
        assert!(parse_results(&text).is_empty());
    }
}
