//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness exposing the API subset the
//! workspace's benches use: `Criterion`, `benchmark_group` with
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//! No statistical analysis or HTML reports — each benchmark prints its
//! per-iteration median, mean, and min over the sampled runs. A filter
//! substring may be passed on the command line (`cargo bench -- predict`)
//! exactly like real criterion.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Units processed per iteration; used to annotate reports with a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Things usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples. Fast closures are
    /// batched so each sample measures at least ~1 ms of work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch calibration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed();
        let batch = if once < Duration::from_micros(100) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let rate = throughput
            .map(|t| {
                let (n, unit) = match t {
                    Throughput::Elements(n) => (n, "elem/s"),
                    Throughput::Bytes(n) => (n, "B/s"),
                };
                format!("  {:.3e} {unit}", n as f64 / median.as_secs_f64().max(1e-12))
            })
            .unwrap_or_default();
        println!(
            "{name:<48} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}  ({} samples){rate}",
            sorted.len()
        );
    }
}

/// Benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-') && a != "--bench");
        Self { filter, sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(&id.into_id(), sample_size, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &self,
        name: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { samples: Vec::new(), sample_size };
        f(&mut b);
        b.report(name, throughput);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with units-per-iteration so the
    /// report includes a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim ignores it (sample
    /// duration is governed by `sample_size` and auto-batching).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&name, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&name, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { filter: None, sample_size: 3 };
        let mut runs = 0u32;
        c.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                std::thread::sleep(Duration::from_micros(200));
            })
        });
        assert!(runs >= 3, "closure ran {runs} times");
    }

    #[test]
    fn group_honors_sample_size_and_inputs() {
        let mut c = Criterion { filter: None, sample_size: 10 };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| {
                seen = d.len();
                d.iter().sum::<u64>()
            })
        });
        group.finish();
        assert_eq!(seen, 3);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion { filter: Some("match_me".into()), sample_size: 2 };
        let mut ran = false;
        c.run_one("other_name", 2, None, |_b| ran = true);
        assert!(!ran);
        c.run_one("does_match_me_yes", 2, None, |_b| ran = true);
        assert!(ran);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
