//! Offline stand-in for the `bytes` crate.
//!
//! Provides immutable [`Bytes`], growable [`BytesMut`], and the
//! [`Buf`]/[`BufMut`] cursor traits — exactly the subset
//! `chemcost_ml::persist` uses for its little-endian model format.
//! Backed by plain `Vec<u8>` (no refcounted slicing; the workspace never
//! splits buffers).

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source (implemented for `&[u8]`, which
/// advances in place).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Copy out the next `dst.len()` bytes.
    ///
    /// # Panics
    /// Panics if the buffer is too short.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Next byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Next little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Next little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Next little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Append cursor over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f64_le(std::f64::consts::PI);
        w.put_u8(7);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64_le(), std::f64::consts::PI);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }

    #[test]
    fn bytes_indexing_and_as_ref() {
        let b: Bytes = vec![9u8, 8, 7].into();
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..2], &[9, 8]);
        assert_eq!(b.as_ref(), &[9, 8, 7]);
        assert_eq!(b.to_vec(), vec![9, 8, 7]);
    }
}
