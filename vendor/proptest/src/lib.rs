//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], the `proptest!` macro and
//! the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! no shrinking (a failure reports the case number and seed instead of a
//! minimized input), uniform rather than edge-biased sampling, and a
//! default of 64 cases per property (override per-block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, or globally via
//! the `PROPTEST_CASES` environment variable).

use std::ops::Range;

/// Deterministic test RNG (xoshiro256++ seeded via SplitMix64).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Generator fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in [0, span).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        v.min(self.end - (self.end - self.start) * f64::EPSILON)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats only: mixed magnitudes, both signs.
        let mag = (rng.unit_f64() * 2.0 - 1.0) * 1e6;
        mag * rng.unit_f64()
    }
}

/// Full-domain strategy for `T` (e.g. `any::<u8>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Valid lengths for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a
    /// length drawn from `size` (exact `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the input — draw another.
    Reject,
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        Self { cases }
    }
}

/// Driver behind the `proptest!` macro: runs `f` on fresh seeded RNGs
/// until `config.cases` cases pass, panicking on the first failure.
pub fn run_cases<F>(config: &ProptestConfig, location: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Distinct deterministic streams per call site.
    let mut base: u64 = 0xC0FF_EE00_D15E_A5E5;
    for b in location.bytes() {
        base = base.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
    }
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let mut case: u64 = 0;
    while passed < config.cases {
        let seed = base.wrapping_add(case);
        let mut rng = TestRng::seed_from_u64(seed);
        case += 1;
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= 16 * config.cases as u64 + 64,
                    "{location}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{location}: property failed on case {case} (seed {seed:#x}): {msg}")
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let location = concat!(file!(), ":", line!(), " (", stringify!($name), ")");
                $crate::run_cases(&config, location, |proptest_rng| {
                    let ($($pat,)+) = ($($crate::Strategy::sample(&($strat), proptest_rng),)+);
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Assert a boolean property inside `proptest!` (returns a test-case
/// failure instead of panicking, like real proptest).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
}

/// Assert inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Reject the current case (resample) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = (1usize..5)
            .prop_flat_map(|n| collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = TestRng::seed_from_u64(3);
        assert_eq!(collection::vec(any::<u8>(), 7usize).sample(&mut rng).len(), 7);
        for _ in 0..100 {
            let len = collection::vec(any::<u8>(), 2..5).sample(&mut rng).len();
            assert!((2..5).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_tuples((a, b) in (0u64..100, 0u64..100), c in 0usize..10) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(c, c);
            prop_assert_ne!(c, c + 1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_location() {
        run_cases_fails();
    }

    fn run_cases_fails() {
        crate::run_cases(&ProptestConfig::with_cases(4), "here", |rng| {
            let v = Strategy::sample(&(0usize..10), rng);
            crate::prop_assert!(v > 100, "v was {v}");
            Ok(())
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let sample = |seed| {
            let mut rng = TestRng::seed_from_u64(seed);
            collection::vec(0.0f64..1.0, 5usize).sample(&mut rng)
        };
        assert_eq!(sample(9), sample(9));
        assert_ne!(sample(9), sample(10));
    }
}
