//! Offline stand-in for the `polling` crate: a minimal epoll-backed
//! readiness poller for Linux.
//!
//! Exposes the subset `chemcost-serve`'s event loop needs — [`Poller`]
//! (register / modify / deregister file descriptors, wait for [`Event`]s)
//! and [`Waker`] (wake a blocked [`Poller::wait`] from another thread) —
//! built directly on `std::os::fd` plus `extern "C"` declarations of the
//! epoll/eventfd entry points the C library already links. No `libc`
//! crate, no crates.io access, matching the `vendor/` pattern.
//!
//! Readiness is **level-triggered** (the epoll default): an fd with
//! unread bytes or writable space keeps reporting ready until drained,
//! so a consumer that processes only part of the data is re-notified on
//! the next [`Poller::wait`] instead of hanging.
#![deny(missing_docs)]
#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

// epoll / eventfd entry points, resolved from the C library that std
// already links. Signatures match the glibc/musl prototypes.
mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o0004000;

    /// The kernel's `struct epoll_event`. On x86-64 the C definition is
    /// `__attribute__((packed))` (the 64-bit data field is 4-byte
    /// aligned); elsewhere it is naturally aligned.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }
}

/// What a registration (or returned event) is interested in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable readiness only.
    Read,
    /// Writable readiness only.
    Write,
    /// Both readable and writable readiness.
    Both,
}

impl Interest {
    fn mask(self) -> u32 {
        match self {
            Interest::Read => sys::EPOLLIN | sys::EPOLLRDHUP,
            Interest::Write => sys::EPOLLOUT,
            Interest::Both => sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLOUT,
        }
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `key` the fd was registered under.
    pub key: usize,
    /// The fd has bytes to read (or a peer hang-up to observe).
    pub readable: bool,
    /// The fd can accept writes without blocking.
    pub writable: bool,
    /// The fd is in an error or hang-up state; the owner should tear the
    /// registration down after draining what it can.
    pub error: bool,
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance: a set of registered file descriptors and a
/// [`wait`](Poller::wait) call that blocks until one is ready.
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Create a fresh poller (`epoll_create1(EPOLL_CLOEXEC)`).
    pub fn new() -> io::Result<Poller> {
        let fd = check(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    fn ctl(&self, op: i32, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: interest.mask(), data: key as u64 };
        check(unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` under `key` with the given interest. The caller
    /// keeps ownership of the fd and must [`deregister`](Self::deregister)
    /// it before closing.
    pub fn register(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, key, interest)
    }

    /// Change an existing registration's interest (and/or key).
    pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, key, interest)
    }

    /// Remove `fd` from the poller.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        check(unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Block until at least one registered fd is ready, `timeout`
    /// elapses (`None` = forever), or a [`Waker`] fires. Ready events
    /// are appended to `events`; returns how many were appended.
    /// A timeout of `Some(0)` polls without blocking. `EINTR` is
    /// retried internally.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        const CAP: usize = 256;
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; CAP];
        // epoll_wait takes whole milliseconds; round sub-millisecond
        // timeouts up so `Some(small)` never degenerates to a busy loop.
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => i32::try_from(d.as_millis().max(u128::from(d.as_nanos() % 1_000_000 != 0)))
                .unwrap_or(i32::MAX),
        };
        let n = loop {
            let ret = unsafe {
                sys::epoll_wait(self.epfd.as_raw_fd(), raw.as_mut_ptr(), CAP as i32, timeout_ms)
            };
            match check(ret) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &raw[..n] {
            let bits = ev.events;
            events.push(Event {
                key: ev.data as usize,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

/// Wakes a blocked [`Poller::wait`] from another thread, via an
/// `eventfd` registered on the poller. Cheap and edge-coalescing: any
/// number of [`wake`](Waker::wake) calls between two waits collapse
/// into one readable event, drained by [`drain`](Waker::drain).
pub struct Waker {
    efd: OwnedFd,
}

impl Waker {
    /// Create an eventfd and register it on `poller` under `key`.
    pub fn new(poller: &Poller, key: usize) -> io::Result<Waker> {
        let fd = check(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        let efd = unsafe { OwnedFd::from_raw_fd(fd) };
        poller.register(efd.as_raw_fd(), key, Interest::Read)?;
        Ok(Waker { efd })
    }

    /// Make the poller's next (or current) `wait` return.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let ret = unsafe {
            sys::write(
                self.efd.as_raw_fd(),
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
        // A full eventfd counter (EAGAIN) already guarantees a pending
        // wake, so "would block" is success here.
        if ret < 0 {
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::WouldBlock {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Consume pending wakes so level-triggered epoll stops reporting
    /// the eventfd readable.
    pub fn drain(&self) {
        let mut buf = 0u64;
        unsafe {
            let _ = sys::read(
                self.efd.as_raw_fd(),
                (&mut buf as *mut u64).cast(),
                std::mem::size_of::<u64>(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn timeout_elapses_without_events() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(25), "{:?}", start.elapsed());
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(listener.as_raw_fd(), 7, Interest::Read).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 7 && e.readable), "{events:?}");
        poller.deregister(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn stream_reports_readable_then_drains() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.register(server.as_raw_fd(), 1, Interest::Read).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 1 && e.readable), "{events:?}");

        // Level-triggered: still readable until the bytes are consumed.
        events.clear();
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.iter().any(|e| e.key == 1 && e.readable), "{events:?}");
        let mut buf = [0u8; 8];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        events.clear();
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(!events.iter().any(|e| e.key == 1), "{events:?}");
        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn modify_switches_interest_to_writable() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.register(server.as_raw_fd(), 2, Interest::Read).unwrap();
        poller.modify(server.as_raw_fd(), 2, Interest::Write).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 2 && e.writable), "{events:?}");
        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_and_coalesces() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::new(Waker::new(&poller, usize::MAX).unwrap());
        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // Multiple wakes before the wait returns collapse into one
            // readable event.
            w.wake().unwrap();
            w.wake().unwrap();
        });
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == usize::MAX && e.readable), "{events:?}");
        waker.drain();
        events.clear();
        poller.wait(&mut events, Some(Duration::from_millis(30))).unwrap();
        assert!(!events.iter().any(|e| e.key == usize::MAX), "drain left a pending wake");
        t.join().unwrap();
    }
}
