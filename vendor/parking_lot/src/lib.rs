//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a panic while held) is recovered by
//! taking the inner guard — matching parking_lot, which has no poisoning
//! at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
