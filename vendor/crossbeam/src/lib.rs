//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`: multi-producer multi-consumer bounded
//! and unbounded channels with disconnect semantics, implemented over
//! `Mutex<VecDeque>` + two `Condvar`s. Not lock-free like the real
//! crossbeam, but semantically equivalent at the API subset the
//! workspace uses (clonable `Sender`/`Receiver`, blocking `send`/`recv`,
//! `try_send`, `recv_timeout`, disconnect on last-handle drop).

pub mod channel {
    //! MPMC channels with disconnect semantics.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`]: channel empty and all
    /// senders gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// A bounded channel holding at most `cap` in-flight messages.
    /// `cap = 0` is rounded up to 1 (this shim has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued; `Err` if all receivers
        /// are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue without blocking; `Full` if at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.chan.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; `Err` once the channel is
        /// empty and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.lock();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake receivers so they observe the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake blocked senders so they observe the disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;
        use std::time::Duration;

        #[test]
        fn fifo_order_single_thread() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn bounded_try_send_fills() {
            let (tx, _rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        }

        #[test]
        fn bounded_send_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).unwrap());
            thread::sleep(Duration::from_millis(30));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn mpmc_all_items_delivered_once() {
            let (tx, rx) = bounded(4);
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..100 {
                            tx.send(p * 100 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let mut all: Vec<i32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..400).collect::<Vec<_>>());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            let r = rx.recv_timeout(Duration::from_millis(20));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(9));
        }
    }
}
