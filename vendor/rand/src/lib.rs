//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API subset the workspace uses: a seedable
//! [`rngs::StdRng`], the [`Rng`] extension trait with `gen`, `gen_range`
//! and `gen_bool`, and the [`SeedableRng`] constructor trait. The
//! generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 exactly as the reference implementation recommends — not
//! bit-compatible with upstream `rand`'s ChaCha-based `StdRng`, but a
//! high-quality deterministic stream, which is all the workspace relies
//! on (seeds are used for reproducibility, never for exact values).

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construct a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's "standard" range
/// (`[0, 1)` for floats, the full domain for integers).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Ranges samplable without bias via 128-bit multiply reduction.
pub trait SampleRange<T> {
    /// Draw one value of the range from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by Lemire's multiply-shift reduction
/// (bias < 2⁻⁶⁴·span, irrelevant at the spans used here).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-domain inclusive range: every u64 is valid.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator; the workspace's deterministic `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_uniform_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0usize..=4);
            assert!(j <= 4);
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(f64::MIN_POSITIVE..1.0)
        }
        let mut rng = StdRng::seed_from_u64(6);
        assert!(draw(&mut rng) > 0.0);
    }
}
