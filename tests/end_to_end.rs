//! End-to-end integration: simulator → dataset → model → advisor →
//! evaluation, exercised through the public umbrella API.

use chemcost::core::advisor::{Advisor, Goal};
use chemcost::core::data::{MachineData, Target};
use chemcost::core::evaluation::prediction_scores;
use chemcost::core::pipeline::{
    bq_table, render_opt_table, stq_table, train_fast_gb, train_paper_gb,
};
use chemcost::ml::metrics::{mse, Scores};
use chemcost::ml::Regressor;
use chemcost::sim::machine::{aurora, frontier};

#[test]
fn full_pipeline_beats_mean_baseline_by_wide_margin() {
    let md = MachineData::generate_sized(&aurora(), 700, 11);
    let model = train_fast_gb(&md);
    let test = md.test_dataset(Target::Seconds);
    let pred = model.predict(&test.x);
    let mean = chemcost::linalg::vecops::mean(&md.train_dataset(Target::Seconds).y);
    let baseline: Vec<f64> = vec![mean; test.len()];
    let model_mse = mse(&test.y, &pred);
    let base_mse = mse(&test.y, &baseline);
    assert!(
        model_mse < base_mse * 0.2,
        "GB ({model_mse:.1}) must crush the mean predictor ({base_mse:.1})"
    );
}

#[test]
fn stq_and_bq_evaluations_are_structurally_sound() {
    let md = MachineData::generate_sized(&aurora(), 700, 12);
    let model = train_fast_gb(&md);
    let stq = stq_table(&md, &model);
    let bq = bq_table(&md, &model);
    for row in &stq.rows {
        // True optimum really is minimal among the test rows of that problem.
        for s in md.test_samples().iter().filter(|s| (s.o, s.v) == (row.o, row.v)) {
            assert!(row.true_seconds <= s.seconds + 1e-9);
        }
        // Config-inferred loss can never beat the true optimum.
        assert!(row.seconds_at_pred >= row.true_seconds - 1e-9);
    }
    for row in &bq.rows {
        assert!(row.objective_at_pred >= row.true_objective - 1e-9);
    }
    // Rendering produces one line per problem plus furniture.
    let rendered = render_opt_table(&stq, "aurora").render();
    assert_eq!(rendered.lines().count(), stq.rows.len() + 5);
}

#[test]
fn advisor_recommendations_come_from_the_candidate_grid() {
    let md = MachineData::generate_sized(&frontier(), 500, 13);
    let model = train_fast_gb(&md);
    let advisor = Advisor::new(&model, frontier());
    for goal in [Goal::ShortestTime, Goal::Budget] {
        let rec = advisor.answer(120, 800, goal).expect("feasible problem");
        assert!(
            advisor.candidates(120, 800).contains(&(rec.nodes, rec.tile)),
            "recommended config must come from the swept grid"
        );
        assert!(rec.predicted_seconds > 0.0);
    }
}

#[test]
fn everything_is_deterministic_under_a_seed() {
    let run = || {
        let md = MachineData::generate_sized(&aurora(), 400, 21);
        let model = train_fast_gb(&md);
        let scores = prediction_scores(&model, &md.test_samples());
        let stq = stq_table(&md, &model);
        (scores, stq.scores, stq.n_incorrect())
    };
    let (a1, a2, a3) = run();
    let (b1, b2, b3) = run();
    assert_eq!(a1, b1);
    assert_eq!(a2, b2);
    assert_eq!(a3, b3);
}

#[test]
fn frontier_is_harder_to_predict_than_aurora() {
    // The paper's recurring observation. This only emerges once model
    // error is pushed below the machines' noise floors, so it needs the
    // full corpus *and* the deployed 750×10 GB (the fast test model's
    // ~0.12 generalization error swamps the σ = 0.03 vs 0.08 gap).
    let score = |machine| {
        let md = MachineData::generate(&machine, 33);
        let model = train_paper_gb(&md);
        prediction_scores(&model, &md.test_samples()).mape
    };
    let aurora_mape = score(aurora());
    let frontier_mape = score(frontier());
    assert!(
        frontier_mape > aurora_mape,
        "frontier (noise σ=0.08) must be harder than aurora (σ=0.03): \
         {frontier_mape:.3} vs {aurora_mape:.3}"
    );
}

#[test]
fn scores_triple_is_internally_consistent() {
    let md = MachineData::generate_sized(&aurora(), 300, 44);
    let model = train_fast_gb(&md);
    let test = md.test_dataset(Target::Seconds);
    let pred = model.predict(&test.x);
    let s = Scores::compute(&test.y, &pred);
    assert_eq!(s.r2, chemcost::ml::metrics::r2_score(&test.y, &pred));
    assert_eq!(s.mae, chemcost::ml::metrics::mae(&test.y, &pred));
    assert_eq!(s.mape, chemcost::ml::metrics::mape(&test.y, &pred));
}
