//! Link checker for the operator docs: every relative markdown link in
//! README.md, the top-level markdown files, and docs/*.md must point at
//! a file (or directory) that exists in the repository. Anchors
//! (`#section`) and absolute URLs are out of scope — this is about
//! cross-references between committed files rotting when one is renamed.

use std::path::{Path, PathBuf};

/// Repository root (this test compiles in the root package).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The markdown files whose links we police.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files: Vec<PathBuf> = ["README.md", "ROADMAP.md", "EXPERIMENTS.md", "CHANGES.md"]
        .iter()
        .map(|f| root.join(f))
        .filter(|p| p.exists())
        .collect();
    let mut docs: Vec<PathBuf> = std::fs::read_dir(root.join("docs"))
        .expect("docs/ directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    docs.sort();
    files.append(&mut docs);
    assert!(files.len() >= 6, "expected README + docs/*.md, found {files:?}");
    files
}

/// Extract `(link_target, line_number)` pairs from inline markdown
/// links `[text](target)`. Skips fenced code blocks and inline code
/// spans, where brackets and parens are code, not links.
fn extract_links(text: &str) -> Vec<(String, usize)> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut in_code = false;
        let mut cleaned = String::new();
        for c in line.chars() {
            if c == '`' {
                in_code = !in_code;
            } else if !in_code {
                cleaned.push(c);
            }
        }
        let mut i = 0;
        while let Some(open) = cleaned[i..].find("](") {
            let close_bracket = i + open;
            let start = close_bracket + 2;
            let Some(close) = cleaned[start..].find(')') else { break };
            let target = &cleaned[start..start + close];
            // Only count it if the preceding text actually contains a
            // matching '[' — crude, but errs toward false negatives.
            if cleaned[..close_bracket].contains('[') {
                links.push((target.to_string(), lineno + 1));
            }
            i = start + close + 1;
        }
    }
    links
}

/// A link is checkable when it is a relative path into the repository.
fn relative_target(target: &str) -> Option<&str> {
    let target = target.split_once(' ').map_or(target, |(path, _title)| path);
    if target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
        || target.is_empty()
    {
        return None;
    }
    // Strip a trailing anchor: FILE.md#section checks FILE.md.
    Some(target.split('#').next().unwrap_or(target))
}

#[test]
fn relative_links_in_docs_resolve() {
    let root = repo_root();
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in doc_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
        let base = file.parent().unwrap_or(Path::new("."));
        for (target, line) in extract_links(&text) {
            let Some(path) = relative_target(&target) else { continue };
            checked += 1;
            let resolved = if let Some(stripped) = path.strip_prefix('/') {
                root.join(stripped)
            } else {
                base.join(path)
            };
            if !resolved.exists() {
                broken.push(format!(
                    "{}:{line}: link `{target}` → missing {}",
                    file.display(),
                    resolved.display()
                ));
            }
        }
    }
    assert!(checked >= 10, "only {checked} relative links found — the extractor is likely broken");
    assert!(broken.is_empty(), "broken doc links:\n{}", broken.join("\n"));
}

#[test]
fn the_serving_doc_is_cross_linked() {
    // The serving data plane's operator doc must be reachable from the
    // entry points an operator actually reads.
    let root = repo_root();
    for from in ["README.md", "docs/ARCHITECTURE.md", "docs/ROBUSTNESS.md", "docs/OBSERVABILITY.md"]
    {
        let text = std::fs::read_to_string(root.join(from)).expect(from);
        assert!(
            text.contains("SERVING.md"),
            "{from} does not link to the serving data-plane doc (SERVING.md)"
        );
    }
}

#[test]
fn extractor_finds_links_and_skips_code() {
    let md = "\
see [the doc](docs/SERVING.md) and [site](https://example.com)\n\
```\n[not a link](nope.md)\n```\n\
inline `[also not](nope.md)` code\n\
[anchored](docs/SERVING.md#tuning)\n";
    let links = extract_links(md);
    let targets: Vec<&str> = links.iter().map(|(t, _)| t.as_str()).collect();
    assert_eq!(
        targets,
        ["docs/SERVING.md", "https://example.com", "docs/SERVING.md#tuning"],
        "{links:?}"
    );
    assert_eq!(relative_target("docs/SERVING.md#tuning"), Some("docs/SERVING.md"));
    assert_eq!(relative_target("https://example.com"), None);
    assert_eq!(relative_target("#local"), None);
}
