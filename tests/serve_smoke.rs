//! Smoke test for the deployed service, run as its own CI job: start the
//! real `chemcost serve` binary with structured logging on, drive
//! predict + advise over the wire, scrape `/metrics`, validate the
//! exposition with the in-repo linter, and check that the advise
//! request's JSONL records correlate under one trace id.

use chemcost::serve::json::Json;
use chemcost::serve::metrics::lint_exposition;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chemcost"))
}

#[test]
fn serve_smoke_predict_advise_metrics_and_logs() {
    let dir = std::env::temp_dir().join("chemcost_serve_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.csv");
    let model = dir.join("tiny.ccgb");
    let log: PathBuf = dir.join("serve.jsonl");
    std::fs::remove_file(&log).ok();

    let out = bin()
        .args(["generate", "--machine", "aurora", "--out"])
        .arg(&data)
        .args(["--size", "80", "--seed", "3"])
        .output()
        .expect("spawn generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["train", "--fast", "--data"])
        .arg(&data)
        .arg("--out")
        .arg(&model)
        .output()
        .expect("spawn train");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Serve with debug-level structured logs going to a JSONL file, and
    // a non-default queue capacity.
    let mut child = bin()
        .args(["serve", "--model"])
        .arg(&model)
        .args(["--machine", "aurora", "--addr", "127.0.0.1:0", "--workers", "2"])
        .args(["--queue-cap", "4"])
        .env("CHEMCOST_LOG", "debug")
        .env("CHEMCOST_LOG_JSON", &log)
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut line = String::new();
    BufReader::new(stderr).read_line(&mut line).expect("startup line");
    assert!(line.contains("queue capacity 4"), "startup line: {line:?}");
    let addr = line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in startup line {line:?}"))
        .to_string();

    let exchange = |method: &str, path: &str, extra: &str, body: &str| -> (u16, String, String) {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(
            s,
            "{method} {path} HTTP/1.1\r\nHost: t\r\n{extra}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let status = resp.split_whitespace().nth(1).unwrap().parse().unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").unwrap();
        (status, head.to_string(), body.to_string())
    };

    let (status, _, body) = exchange(
        "POST",
        "/v1/predict",
        "",
        r#"{"rows": [{"o": 100, "v": 800, "nodes": 32, "tile": 24}]}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"predictions\""), "{body}");

    let trace_id = "smoke-advise-1";
    let (status, head, body) = exchange(
        "POST",
        "/v1/advise",
        &format!("X-Request-Id: {trace_id}\r\n"),
        r#"{"o": 120, "v": 900, "goal": "stq"}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"recommendation\""), "{body}");
    assert!(head.contains(&format!("X-Request-Id: {trace_id}")), "{head}");

    // /metrics: saturation series present, exposition lint-clean.
    let (status, _, metrics) = exchange("GET", "/metrics", "", "");
    assert_eq!(status, 200);
    for series in [
        "chemcost_requests_in_flight",
        "chemcost_pool_queue_depth",
        "chemcost_requests_shed_total",
        "chemcost_build_info{version=\"",
        "chemcost_advise_stage_duration_seconds_count{stage=\"sweep\"} 1",
        "chemcost_requests_total{route=\"predict\"} 1",
        "chemcost_requests_total{route=\"advise\"} 1",
    ] {
        assert!(metrics.contains(series), "{series} missing:\n{metrics}");
    }
    if let Err(problems) = lint_exposition(&metrics) {
        panic!("exposition fails the linter: {problems:?}\n{metrics}");
    }

    // /debug/requests: the flight recorder saw the predict and advise
    // requests, its JSON parses, and every timeline's stage durations
    // reconcile with its end-to-end total (±5%).
    let (status, _, debug) = exchange("GET", "/debug/requests", "", "");
    assert_eq!(status, 200);
    let doc = Json::parse(&debug).unwrap_or_else(|e| panic!("bad /debug/requests JSON: {e}"));
    assert!(doc.get("completed").and_then(Json::as_usize).unwrap_or(0) >= 2, "{debug}");
    let recent = doc.get("recent").and_then(Json::as_array).expect("recent array");
    assert!(!recent.is_empty(), "{debug}");
    assert!(
        recent.iter().any(|e| e.get("trace").and_then(Json::as_str) == Some(trace_id)),
        "advise request missing from flight recorder: {debug}"
    );
    for entry in recent {
        let total = entry.get("total_us").and_then(Json::as_f64).expect("total_us");
        let stages = entry.get("stages").expect("stages object");
        let sum: f64 =
            ["read_us", "queue_us", "batch_wait_us", "handler_us", "reorder_us", "write_us"]
                .iter()
                .map(|k| stages.get(k).and_then(Json::as_f64).expect("stage value"))
                .sum();
        let tolerance = (total * 0.05).max(10.0);
        assert!(
            (sum - total).abs() <= tolerance,
            "stage sum {sum} vs total {total} µs out of tolerance: {entry:?}"
        );
    }

    let (status, _, _) = exchange("POST", "/v1/shutdown", "", "");
    assert_eq!(status, 200);
    let code = child.wait().expect("wait for serve");
    assert!(code.success(), "serve exited with {code:?}");

    // The advise request's records correlate in the JSONL log: the same
    // trace id from accept through sweep to the access-log line.
    let text = std::fs::read_to_string(&log).expect("read JSONL log");
    let mut names = Vec::new();
    let mut batch_flush_correlated = false;
    for l in text.lines() {
        let v = Json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}"));
        if v.get("trace").and_then(Json::as_str) == Some(trace_id) {
            names.push(v.get("name").and_then(Json::as_str).unwrap().to_string());
        }
        // `batch.flush` is emitted by the collector thread (no trace
        // scope); it correlates through its `traces` field instead.
        if v.get("name").and_then(Json::as_str) == Some("batch.flush")
            && v.get("fields")
                .and_then(|f| f.get("traces"))
                .and_then(Json::as_str)
                .is_some_and(|t| t.split(',').any(|t| t == trace_id))
        {
            batch_flush_correlated = true;
        }
    }
    for name in ["http.accept", "advise.cache", "advise.sweep", "http.request", "request.timeline"]
    {
        assert!(names.iter().any(|n| n == name), "{name} missing from trace: {names:?}");
    }
    assert!(batch_flush_correlated, "no batch.flush event names the advise trace id");

    std::fs::remove_dir_all(&dir).ok();
}
