//! End-to-end tests of the `chemcost` CLI binary: the full
//! generate → train → advise → evaluate → importance workflow through a
//! real subprocess, exactly as a user drives it.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chemcost"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chemcost_cli_test_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow_round_trips() {
    let dir = workdir("workflow");
    let data = dir.join("data.csv");
    let model = dir.join("model.ccgb");

    // generate
    let out = bin()
        .args(["generate", "--machine", "aurora", "--out"])
        .arg(&data)
        .args(["--size", "300", "--seed", "5"])
        .output()
        .expect("spawn generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(data.exists());

    // train
    let out = bin()
        .args(["train", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&model)
        .args(["--fast"])
        .output()
        .expect("spawn train");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    // advise by orbital counts
    let out = bin()
        .args(["advise", "--model"])
        .arg(&model)
        .args(["--machine", "aurora", "--o", "120", "--v", "900", "--goal", "stq"])
        .output()
        .expect("spawn advise");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("STQ"), "unexpected advise output: {stdout}");
    assert!(stdout.contains("nodes"), "unexpected advise output: {stdout}");

    // advise by molecule name
    let out = bin()
        .args(["advise", "--model"])
        .arg(&model)
        .args(["--machine", "aurora", "--molecule", "benzene", "--basis", "cc-pvtz", "--goal", "bq"])
        .output()
        .expect("spawn advise molecule");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("BQ"));

    // evaluate
    let out = bin()
        .args(["evaluate", "--model"])
        .arg(&model)
        .args(["--data"])
        .arg(&data)
        .output()
        .expect("spawn evaluate");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("R²"));

    // importance
    let out = bin()
        .args(["importance", "--model"])
        .arg(&model)
        .args(["--data"])
        .arg(&data)
        .output()
        .expect("spawn importance");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains('V') && stdout.contains("nodes"), "importance output: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn molecules_catalog_prints() {
    let out = bin().arg("molecules").output().expect("spawn molecules");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("benzene"));
    assert!(stdout.contains("cc-pVTZ"));
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = bin().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn missing_arguments_reported() {
    let out = bin().args(["train"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"));
}

#[test]
fn corrupt_model_file_rejected_cleanly() {
    let dir = workdir("corrupt");
    let model = dir.join("bad.ccgb");
    std::fs::write(&model, b"this is not a model").unwrap();
    let out = bin()
        .args(["advise", "--model"])
        .arg(&model)
        .args(["--machine", "aurora", "--o", "100", "--v", "700"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("model"));
    std::fs::remove_dir_all(&dir).ok();
}
