//! End-to-end tests of the `chemcost` CLI binary: the full
//! generate → train → advise → evaluate → importance workflow through a
//! real subprocess, exactly as a user drives it.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chemcost"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chemcost_cli_test_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow_round_trips() {
    let dir = workdir("workflow");
    let data = dir.join("data.csv");
    let model = dir.join("model.ccgb");

    // generate
    let out = bin()
        .args(["generate", "--machine", "aurora", "--out"])
        .arg(&data)
        .args(["--size", "300", "--seed", "5"])
        .output()
        .expect("spawn generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(data.exists());

    // train
    let out = bin()
        .args(["train", "--data"])
        .arg(&data)
        .args(["--out"])
        .arg(&model)
        .args(["--fast"])
        .output()
        .expect("spawn train");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    // advise by orbital counts
    let out = bin()
        .args(["advise", "--model"])
        .arg(&model)
        .args(["--machine", "aurora", "--o", "120", "--v", "900", "--goal", "stq"])
        .output()
        .expect("spawn advise");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("STQ"), "unexpected advise output: {stdout}");
    assert!(stdout.contains("nodes"), "unexpected advise output: {stdout}");

    // advise by molecule name
    let out = bin()
        .args(["advise", "--model"])
        .arg(&model)
        .args([
            "--machine",
            "aurora",
            "--molecule",
            "benzene",
            "--basis",
            "cc-pvtz",
            "--goal",
            "bq",
        ])
        .output()
        .expect("spawn advise molecule");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("BQ"));

    // evaluate
    let out = bin()
        .args(["evaluate", "--model"])
        .arg(&model)
        .args(["--data"])
        .arg(&data)
        .output()
        .expect("spawn evaluate");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("R²"));

    // importance
    let out = bin()
        .args(["importance", "--model"])
        .arg(&model)
        .args(["--data"])
        .arg(&data)
        .output()
        .expect("spawn importance");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains('V') && stdout.contains("nodes"), "importance output: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn molecules_catalog_prints() {
    let out = bin().arg("molecules").output().expect("spawn molecules");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("benzene"));
    assert!(stdout.contains("cc-pVTZ"));
}

#[test]
fn unknown_command_exits_nonzero_with_usage() {
    let out = bin().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn missing_arguments_reported() {
    let out = bin().args(["train"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"));
}

#[test]
fn equals_syntax_accepted_end_to_end() {
    let dir = workdir("equals");
    let data = dir.join("data.csv");
    let out = bin()
        .arg("generate")
        .arg(format!("--out={}", data.display()))
        .args(["--machine=aurora", "--size=50", "--seed=9"])
        .output()
        .expect("spawn generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(data.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_option_rejected_with_usage_exit_code() {
    let out = bin().args(["advise", "--budge", "3"]).output().expect("spawn");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2), "parse errors exit with 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--budge"), "{stderr}");
    assert!(stderr.contains("'advise'"), "{stderr}");
}

#[test]
fn serve_requires_model_and_machine() {
    let out = bin().args(["serve", "--addr", "127.0.0.1:0"]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--machine") || stderr.contains("--model"), "{stderr}");
}

#[test]
fn serve_starts_answers_and_shuts_down() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = workdir("serve");
    let data = dir.join("data.csv");
    let model = dir.join("tiny.ccgb");
    let out = bin()
        .args(["generate", "--machine", "aurora", "--out"])
        .arg(&data)
        .args(["--size", "80", "--seed", "3"])
        .output()
        .expect("spawn generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["train", "--fast", "--data"])
        .arg(&data)
        .arg("--out")
        .arg(&model)
        .output()
        .expect("spawn train");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Start the daemon on an ephemeral port and scrape the bound address
    // from its startup line on stderr.
    let mut child = bin()
        .args(["serve", "--model"])
        .arg(&model)
        .args(["--machine", "aurora", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut line = String::new();
    BufReader::new(stderr).read_line(&mut line).expect("startup line");
    let addr = line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in startup line {line:?}"))
        .to_string();

    let exchange = |method: &str, path: &str, body: &str| -> (u16, String) {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
        write!(
            s,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let status = resp.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    };

    let (status, body) = exchange("GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    let (status, body) = exchange("POST", "/v1/advise", r#"{"o": 120, "v": 900, "goal": "stq"}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"recommendation\""), "{body}");
    let (status, _) = exchange("POST", "/v1/shutdown", "");
    assert_eq!(status, 200);

    let code = child.wait().expect("wait for serve");
    assert!(code.success(), "serve exited with {code:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_dumps_per_task_jsonl_and_summary() {
    let dir = workdir("trace");
    let out_file = dir.join("trace.jsonl");

    // To stdout: one JSON object per task, summary on stderr.
    let out = bin()
        .args(["trace", "--machine", "aurora", "--o", "40", "--v", "200"])
        .args(["--nodes", "4", "--tile", "60"])
        .output()
        .expect("spawn trace");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let first = stdout.lines().next().expect("at least one task record");
    assert!(first.starts_with("{\"task\":0,"), "{first}");
    assert!(first.contains("\"executor\":") && first.contains("\"duration\":"), "{first}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tasks") && stderr.contains("utilization"), "{stderr}");

    // To a file, deterministic under an explicit seed with noise.
    for _ in 0..2 {
        let out = bin()
            .args(["trace", "--machine", "aurora", "--o", "40", "--v", "200"])
            .args(["--nodes", "4", "--tile", "60", "--noise", "0.05", "--seed", "7", "--out"])
            .arg(&out_file)
            .output()
            .expect("spawn trace");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let written = std::fs::read_to_string(&out_file).unwrap();
    assert!(written.lines().count() > 10, "expected many task records");

    // An untraceable configuration fails cleanly.
    let out = bin()
        .args(["trace", "--machine", "aurora", "--o", "300", "--v", "1500"])
        .args(["--nodes", "100", "--tile", "10"])
        .output()
        .expect("spawn trace");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("tracing cap"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_model_file_rejected_cleanly() {
    let dir = workdir("corrupt");
    let model = dir.join("bad.ccgb");
    std::fs::write(&model, b"this is not a model").unwrap();
    let out = bin()
        .args(["advise", "--model"])
        .arg(&model)
        .args(["--machine", "aurora", "--o", "100", "--v", "700"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("model"));
    std::fs::remove_dir_all(&dir).ok();
}
