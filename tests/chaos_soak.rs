//! Chaos soak: drive the real `chemcost serve` binary under fault
//! injection with the retrying client, and hold the robustness layer to
//! its contract (docs/ROBUSTNESS.md):
//!
//! * every *delivered* response is well-formed — a 2xx answer or a
//!   structured JSON error, never a bare string or a torn body that
//!   parses;
//! * advise answers always name the model and version that served them;
//! * the robustness metrics (`chemcost_deadline_exceeded_total`,
//!   `chemcost_model_staleness_seconds`, …) are scrapeable and the
//!   exposition passes the in-repo linter with every required family
//!   present.
//!
//! Injection is deterministic (seeded SplitMix64 streams), so these
//! soaks replay identically run to run; CI executes this file as the
//! `chaos` job.

use chemcost::serve::metrics::{lint_exposition_with_required, REQUIRED_SERIES};
use chemcost::serve::{Client, RetryPolicy};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::Duration;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chemcost"))
}

/// A running `chemcost serve --chaos <profile>` child plus its address.
struct ChaosServer {
    child: Child,
    addr: String,
    dir: PathBuf,
}

impl ChaosServer {
    /// Generate data, train a tiny model, and start the server under
    /// the given chaos profile.
    fn start(profile: &str, tag: &str) -> ChaosServer {
        let dir = std::env::temp_dir().join(format!("chemcost_chaos_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let model = dir.join("tiny.ccgb");

        let out = bin()
            .args(["generate", "--machine", "aurora", "--out"])
            .arg(&data)
            .args(["--size", "80", "--seed", "3"])
            .output()
            .expect("spawn generate");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let out = bin()
            .args(["train", "--fast", "--data"])
            .arg(&data)
            .arg("--out")
            .arg(&model)
            .output()
            .expect("spawn train");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

        let mut child = bin()
            .args(["serve", "--model"])
            .arg(&model)
            .args(["--machine", "aurora", "--addr", "127.0.0.1:0", "--workers", "2"])
            .args(["--chaos", profile])
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut line = String::new();
        BufReader::new(stderr).read_line(&mut line).expect("startup line");
        assert!(line.contains("CHAOS"), "chaos profile missing from startup line: {line:?}");
        let addr = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in startup line {line:?}"))
            .to_string();
        ChaosServer { child, addr, dir }
    }

    fn client(&self) -> Client {
        Client::new(&self.addr).with_policy(RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            seed: 11,
        })
    }

    /// Scrape `/metrics` and require a lint-clean exposition with every
    /// catalogued family present.
    fn assert_metrics_clean(&self) -> String {
        let resp = self.client().get("/metrics").expect("scrape /metrics");
        assert_eq!(resp.status, 200);
        let text = resp.text();
        if let Err(problems) = lint_exposition_with_required(&text, REQUIRED_SERIES) {
            panic!("exposition fails the linter: {problems:?}\n{text}");
        }
        text
    }

    fn shutdown(mut self) {
        // Shutdown itself may race in-flight chaos; a transport error
        // here just means the server saw the request and died mid-write.
        let _ = self.client().post("/v1/shutdown", b"");
        let status = self.child.wait().expect("wait for serve");
        assert!(status.success(), "serve exited with {status:?}");
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// The acceptance soak: 500 sequential advise calls under poisoned
/// reloads must all deliver well-formed, version-stamped answers.
#[test]
fn poison_reload_soak_keeps_every_answer_well_formed() {
    let server = ChaosServer::start("poison-reload", "poison");
    let client = server.client();

    let mut reload_failures = 0u32;
    for i in 0..500 {
        // Interleave hot reloads so the poison actually fires; the file
        // on disk stays valid, so only injected faults can fail them.
        if i % 10 == 0 {
            match client.post("/v1/models/tiny/reload", b"") {
                Ok(resp) => {
                    assert!(
                        resp.is_well_formed(),
                        "reload response not well-formed: {} {}",
                        resp.status,
                        resp.text()
                    );
                    if resp.status == 500 {
                        reload_failures += 1;
                        // Degraded reloads still report what is serving.
                        let v = resp.json().unwrap();
                        assert!(v.get("serving_version").is_some(), "{}", resp.text());
                    }
                }
                Err(e) => panic!("reload call {i} failed at transport level: {e}"),
            }
        }
        let resp = client
            .advise(r#"{"o": 120, "v": 900, "goal": "stq"}"#)
            .unwrap_or_else(|e| panic!("advise call {i} not delivered: {e}"));
        assert!(
            resp.is_well_formed(),
            "advise call {i} not well-formed: {} {}",
            resp.status,
            resp.text()
        );
        assert_eq!(resp.status, 200, "advise call {i}: {}", resp.text());
        let v = resp.json().unwrap();
        assert!(v.get("model").is_some(), "call {i} lost the model name: {}", resp.text());
        let version = v.get("model_version").and_then(|j| j.as_usize());
        assert!(version.is_some_and(|v| v >= 1), "call {i} lost the version: {}", resp.text());
    }
    assert!(reload_failures > 0, "poison-reload never fired across 50 reloads");

    let metrics = server.assert_metrics_clean();
    for series in ["chemcost_deadline_exceeded_total", "chemcost_model_staleness_seconds"] {
        assert!(metrics.contains(series), "{series} missing:\n{metrics}");
    }
    // The injected failures surface in both the fault and reload series.
    assert!(
        metrics.contains(r#"chemcost_faults_injected_total{kind="poison-reload"}"#),
        "{metrics}"
    );
    let failures = metrics
        .lines()
        .find_map(|l| l.strip_prefix("chemcost_model_reload_failures_total "))
        .and_then(|v| v.trim().parse::<u32>().ok())
        .expect("reload failure counter present");
    assert_eq!(failures, reload_failures, "metrics disagree with observed 500s");

    server.shutdown();
}

/// Slow reads delay answers but never malform them; a generous deadline
/// rides along on every request to exercise the header path end to end.
#[test]
fn slow_io_soak_delays_but_never_malforms() {
    let server = ChaosServer::start("slow-io", "slowio");
    let client = server.client().with_deadline_ms(Some(8_000));

    for i in 0..150 {
        let resp = client
            .advise(r#"{"o": 100, "v": 800, "goal": "stq"}"#)
            .unwrap_or_else(|e| panic!("advise call {i} not delivered: {e}"));
        assert!(resp.is_well_formed(), "call {i}: {} {}", resp.status, resp.text());
        assert_eq!(resp.status, 200, "call {i}: {}", resp.text());
    }

    let metrics = server.assert_metrics_clean();
    assert!(
        metrics.contains(r#"chemcost_faults_injected_total{kind="slow-io"}"#),
        "slow-io never fired:\n{metrics}"
    );
    server.shutdown();
}

/// Dropped connections tear responses mid-write; the strict client
/// parser must surface each tear as a transport error (retried), never
/// as a short body, and retries must recover nearly every call.
#[test]
fn drop_conn_soak_retries_through_torn_responses() {
    let server = ChaosServer::start("drop-conn", "dropconn");
    let client = server.client();

    let (mut delivered, mut exhausted) = (0u32, 0u32);
    let mut retried_calls = 0u32;
    for i in 0..200 {
        match client.advise(r#"{"o": 110, "v": 850, "goal": "stq"}"#) {
            Ok(resp) => {
                delivered += 1;
                if resp.attempts > 1 {
                    retried_calls += 1;
                }
                assert!(resp.is_well_formed(), "call {i}: {} {}", resp.status, resp.text());
                assert_eq!(resp.status, 200, "call {i}: {}", resp.text());
            }
            // With a 15% drop rate, five attempts exhaust ~0.008% of
            // the time — and deterministically so under fixed seeds.
            Err(e) => {
                exhausted += 1;
                assert!(
                    matches!(e, chemcost::serve::ClientError::Exhausted { .. }),
                    "call {i}: unexpected terminal error {e}"
                );
            }
        }
    }
    assert!(delivered >= 195, "only {delivered}/200 delivered ({exhausted} exhausted)");
    assert!(retried_calls > 0, "drop-conn never forced a retry across 200 calls");

    server.shutdown();
}
