//! Property-based integration tests over the simulator and advisor stack.

use chemcost::sim::ccsd::{iteration_task_classes, Problem};
use chemcost::sim::machine::{aurora, frontier};
use chemcost::sim::schedule::lpt_classes;
use chemcost::sim::simulate::{simulate_iteration, simulate_iteration_clean, Config};
use proptest::prelude::*;

fn problems() -> impl Strategy<Value = Problem> {
    (20usize..350, 100usize..1600).prop_map(|(o, v)| Problem::new(o, v))
}

fn configs() -> impl Strategy<Value = Config> {
    (1usize..900, 10usize..200).prop_map(|(n, t)| Config::new(n, t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulated_times_positive_or_infeasible(p in problems(), cfg in configs()) {
        for machine in [aurora(), frontier()] {
            let r = simulate_iteration_clean(&p, &cfg, &machine);
            if r.feasible {
                prop_assert!(r.seconds.is_finite() && r.seconds > 0.0);
                prop_assert!((r.node_hours - r.seconds * cfg.nodes as f64 / 3600.0).abs() < 1e-9);
            } else {
                prop_assert!(r.seconds.is_infinite());
            }
        }
    }

    #[test]
    fn breakdown_accounts_for_total(p in problems(), cfg in configs()) {
        let machine = aurora();
        let r = simulate_iteration_clean(&p, &cfg, &machine);
        if r.feasible {
            let sum = r.breakdown.balanced + r.breakdown.imbalance + r.breakdown.overhead;
            prop_assert!((sum - r.seconds).abs() < 1e-6 * r.seconds.max(1.0));
            prop_assert!(r.breakdown.imbalance >= -1e-9);
        }
    }

    #[test]
    fn noise_is_bounded_multiplicative(p in problems(), cfg in configs(), seed in 0u64..10_000) {
        let machine = frontier();
        let clean = simulate_iteration_clean(&p, &cfg, &machine);
        prop_assume!(clean.feasible);
        let noisy = simulate_iteration(&p, &cfg, &machine, seed);
        let ratio = noisy.seconds / clean.seconds;
        // σ = 0.08 log-normal: 6-sigma bounds.
        prop_assert!(ratio > 0.55 && ratio < 1.8, "ratio {ratio}");
    }

    #[test]
    fn task_flops_conserved_under_tiling(p in problems(), tile in 10usize..200) {
        let classes = iteration_task_classes(&p, tile);
        let total: f64 = classes.iter().map(|c| c.flops * c.count as f64).sum();
        let classes2 = iteration_task_classes(&p, tile + 7);
        let total2: f64 = classes2.iter().map(|c| c.flops * c.count as f64).sum();
        // FLOPs are a property of the contraction, not the tiling.
        prop_assert!((total - total2).abs() / total < 1e-9);
    }

    #[test]
    fn makespan_respects_lower_bounds(p in problems(), tile in 16usize..160, execs in 1usize..5000) {
        let classes = iteration_task_classes(&p, tile);
        let stats = lpt_classes(&classes, execs, |c| c.flops);
        let total: f64 = classes.iter().map(|c| c.flops * c.count as f64).sum();
        let max_task = classes.iter().map(|c| c.flops).fold(0.0, f64::max);
        prop_assert!(stats.makespan + 1e-6 >= total / execs as f64);
        prop_assert!(stats.makespan + 1e-6 >= max_task);
        prop_assert!(stats.makespan <= total * (1.0 + 1e-12) + 1e-9);
        prop_assert!(stats.imbalance >= 1.0 - 1e-12);
    }

    #[test]
    fn scaling_out_never_hurts_pure_task_time(p in problems(), tile in 16usize..160) {
        // The *task phase* (no overheads) is non-increasing in executors.
        let classes = iteration_task_classes(&p, tile);
        let mut prev = f64::INFINITY;
        for execs in [8, 64, 512, 4096] {
            let stats = lpt_classes(&classes, execs, |c| c.flops);
            prop_assert!(stats.makespan <= prev + 1e-9);
            prev = stats.makespan;
        }
    }

    #[test]
    fn seconds_grow_with_problem_size_at_fixed_config(
        o in 30usize..150, v in 200usize..800, seed in 0u64..100
    ) {
        let machine = aurora();
        let cfg = Config::new(64, 60);
        let small = simulate_iteration_clean(&Problem::new(o, v), &cfg, &machine);
        let big = simulate_iteration_clean(&Problem::new(o + 40, v + 300), &cfg, &machine);
        prop_assume!(small.feasible && big.feasible);
        let _ = seed;
        prop_assert!(big.seconds > small.seconds, "{} vs {}", big.seconds, small.seconds);
    }
}
