//! Integration: active learning on simulator corpora (the Figures 3–6
//! machinery at reduced scale).

use chemcost::active::{ActiveConfig, Strategy};
use chemcost::core::advisor::Goal;
use chemcost::core::data::MachineData;
use chemcost::core::pipeline::active_learning_run;
use chemcost::sim::machine::aurora;

fn cfg() -> ActiveConfig {
    ActiveConfig { n_initial: 40, query_size: 40, n_queries: 4, seed: 5, gb_shape: (60, 4, 0.15) }
}

#[test]
fn all_strategies_learn_on_simulator_data() {
    let md = MachineData::generate_sized(&aurora(), 400, 55);
    for strategy in Strategy::all() {
        let run = active_learning_run(&md, strategy, None, &cfg());
        assert_eq!(run.rounds.len(), 4, "{strategy}");
        let first = run.rounds.first().unwrap().pool.mape;
        let last = run.rounds.last().unwrap().pool.mape;
        // At this reduced scale curves can plateau; they must not blow up.
        // (The full-scale monotone improvement is exercised by exp_active.)
        assert!(
            last <= first * 1.15,
            "{strategy}: pool MAPE should not get materially worse \
             ({first:.3} -> {last:.3})"
        );
    }
}

#[test]
fn goal_curves_are_recorded_for_stq_and_bq() {
    let md = MachineData::generate_sized(&aurora(), 350, 56);
    for goal in [Goal::ShortestTime, Goal::Budget] {
        let run =
            active_learning_run(&md, Strategy::Committee { n_members: 3 }, Some(goal), &cfg());
        for r in &run.rounds {
            let g = r.goal.expect("goal scores recorded");
            assert!(g.mape >= 0.0 && g.mae >= 0.0);
            assert!(g.r2 <= 1.0);
        }
    }
}

#[test]
fn goal_mape_reflects_config_inferred_loss_not_prediction_loss() {
    // The goal evaluator measures losses at the *predicted configuration's
    // true cost*, so a model whose goal MAPE is 0 must name true optima for
    // every test problem — which an early-round model essentially never
    // does on this corpus. Meanwhile the score must stay finite and sane.
    let md = MachineData::generate_sized(&aurora(), 400, 57);
    let run = active_learning_run(&md, Strategy::Random, Some(Goal::ShortestTime), &cfg());
    let g = run.rounds.first().unwrap().goal.unwrap();
    assert!(g.mape.is_finite());
    // Config-inferred loss is bounded below by zero and is zero only for
    // perfect configuration recovery.
    assert!(g.mape >= 0.0);
}

#[test]
fn active_runs_are_seed_deterministic() {
    let md = MachineData::generate_sized(&aurora(), 300, 58);
    let a = active_learning_run(&md, Strategy::Uncertainty, None, &cfg());
    let b = active_learning_run(&md, Strategy::Uncertainty, None, &cfg());
    assert_eq!(a.labeled_indices, b.labeled_indices);
    for (x, y) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(x.pool.mape, y.pool.mape);
    }
}

#[test]
fn informed_strategies_eventually_match_or_beat_random() {
    // On the full paper-scale corpora US/QC dominate RS (Figures 3–6);
    // exp_active verifies that. At this reduced scale query batches cover
    // a third of the pool, so all strategies converge to similar accuracy —
    // assert the stable sanity form: the informed strategies land in the
    // same regime as RS (not catastrophically worse).
    let md = MachineData::generate_sized(&aurora(), 500, 59);
    let final_mape = |s| active_learning_run(&md, s, None, &cfg()).rounds.last().unwrap().pool.mape;
    let rs = final_mape(Strategy::Random);
    let us = final_mape(Strategy::Uncertainty);
    let qc = final_mape(Strategy::Committee { n_members: 5 });
    let best_informed = us.min(qc);
    assert!(
        best_informed <= rs * 2.0 + 0.05,
        "informed strategies should be in the same regime: US {us:.3} QC {qc:.3} RS {rs:.3}"
    );
}
