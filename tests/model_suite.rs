//! Integration: every model family in the zoo against real simulator data.

use chemcost::core::data::{MachineData, Target};
use chemcost::ml::metrics::r2_score;
use chemcost::ml::model_selection::Params;
use chemcost::ml::traits::{Regressor, UncertaintyRegressor};
use chemcost::ml::zoo::ModelKind;
use chemcost::sim::machine::aurora;

fn corpus() -> MachineData {
    MachineData::generate_sized(&aurora(), 500, 77)
}

#[test]
fn every_family_learns_the_simulator_surface() {
    let md = corpus();
    let train = md.train_dataset(Target::Seconds);
    let test = md.test_dataset(Target::Seconds);
    for kind in ModelKind::all() {
        let mut model = kind.build(&Params::new());
        model.fit(&train.x, &train.y).unwrap_or_else(|e| panic!("{kind}: {e}"));
        let r2_train = r2_score(&train.y, &model.predict(&train.x));
        assert!(r2_train > 0.3, "{kind}: training R² too low ({r2_train:.3})");
        let pred = model.predict(&test.x);
        assert!(pred.iter().all(|p| p.is_finite()), "{kind}: non-finite predictions");
    }
}

#[test]
fn tree_ensembles_beat_linear_family_on_this_surface() {
    // The response surface is strongly non-linear in (nodes, tile); the
    // paper's Figures 1–2 show the tree ensembles clearly ahead. Verify
    // the ordering holds here too.
    let md = corpus();
    let train = md.train_dataset(Target::Seconds);
    let test = md.test_dataset(Target::Seconds);
    let r2_of = |kind: ModelKind| {
        let mut m = kind.build(&Params::new());
        m.fit(&train.x, &train.y).unwrap();
        r2_score(&test.y, &m.predict(&test.x))
    };
    let gb = r2_of(ModelKind::GradientBoosting);
    let rf = r2_of(ModelKind::RandomForest);
    let pr = r2_of(ModelKind::Polynomial);
    let br = r2_of(ModelKind::BayesianRidge);
    assert!(gb > pr && gb > br, "GB ({gb:.3}) must beat PR ({pr:.3}) and BR ({br:.3})");
    // At this corpus size RF and degree-3 PR can trade places; the linear
    // BR is reliably dominated (the full-scale ordering is in Figures 1–2).
    assert!(rf > br, "RF ({rf:.3}) must beat BR ({br:.3})");
}

#[test]
fn gp_uncertainty_grows_away_from_training_data() {
    let md = corpus();
    let train = md.train_dataset(Target::Seconds);
    // Subsample: exact GPs on 375+ points are slow in debug builds.
    let idx: Vec<usize> = (0..train.len()).step_by(3).collect();
    let sub = train.select(&idx);
    let mut gp = chemcost::ml::gaussian_process::GaussianProcess::new(0.5, 1e-3);
    gp.fit(&sub.x, &sub.y).unwrap();
    let (_, std_in) = gp.predict_with_std(&sub.x);
    // A configuration far outside the sweep ranges.
    let far = chemcost::linalg::Matrix::from_rows(&[&[1000.0, 5000.0, 5000.0, 500.0]]);
    let (_, std_far) = gp.predict_with_std(&far);
    let mean_in = std_in.iter().sum::<f64>() / std_in.len() as f64;
    assert!(
        std_far[0] > mean_in,
        "extrapolation std ({}) must exceed mean in-sample std ({mean_in})",
        std_far[0]
    );
}

#[test]
fn forest_committee_uncertainty_available_via_trait_object() {
    let md = corpus();
    let train = md.train_dataset(Target::Seconds);
    let mut rf = chemcost::ml::forest::RandomForest::new(25, 8);
    rf.fit(&train.x, &train.y).unwrap();
    let unc: &dyn UncertaintyRegressor = &rf;
    let (mean, std) = unc.predict_with_std(&train.x);
    assert_eq!(mean.len(), train.len());
    assert!(std.iter().all(|&s| s >= 0.0));
}

#[test]
fn node_hours_target_also_learnable() {
    let md = corpus();
    let train = md.train_dataset(Target::NodeHours);
    let test = md.test_dataset(Target::NodeHours);
    let mut gb = chemcost::ml::gradient_boosting::GradientBoosting::new(150, 6, 0.1);
    gb.fit(&train.x, &train.y).unwrap();
    let r2 = r2_score(&test.y, &gb.predict(&test.x));
    assert!(r2 > 0.5, "node-hours target should be learnable: R² {r2:.3}");
}
