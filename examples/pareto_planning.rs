//! Allocation planning beyond the paper's two point questions: the
//! predicted time/cost Pareto frontier, budget- and deadline-constrained
//! recommendations, and risk-averse advice from an uncertainty-aware
//! model.
//!
//! ```text
//! cargo run --release --example pareto_planning [O V]
//! ```

use chemcost::core::advisor::{Advisor, Goal, UncertaintyAdvisor};
use chemcost::core::data::{MachineData, Target};
use chemcost::ml::forest::RandomForest;
use chemcost::ml::Regressor;
use chemcost::sim::machine::aurora;

fn main() {
    let mut args = std::env::args().skip(1);
    let o: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(180);
    let v: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1070);

    let machine = aurora();
    println!("training on simulated {} data …", machine.name);
    let data = MachineData::generate_sized(&machine, 1500, 21);
    let train = data.train_dataset(Target::Seconds);

    // A random forest gives us committee uncertainty for free.
    let mut rf = RandomForest::new(150, 14);
    rf.seed = 3;
    rf.fit(&train.x, &train.y).expect("training");

    let advisor = Advisor::new(&rf, machine.clone());
    println!("\npredicted Pareto frontier for (O={o}, V={v}):");
    println!("{:>6} {:>5} {:>12} {:>12}", "nodes", "tile", "seconds", "node-hours");
    for r in advisor.pareto_frontier(o, v) {
        println!(
            "{:>6} {:>5} {:>12.1} {:>12.2}",
            r.nodes, r.tile, r.predicted_seconds, r.predicted_node_hours
        );
    }

    let stq = advisor.answer_stq(o, v).expect("feasible");
    let bq = advisor.answer_bq(o, v).expect("feasible");
    let budget = (stq.predicted_node_hours + bq.predicted_node_hours) / 2.0;
    let deadline = (stq.predicted_seconds + bq.predicted_seconds) / 2.0;

    println!("\nconstrained questions:");
    if let Some(r) = advisor.fastest_within_budget(o, v, budget) {
        println!(
            "  fastest within {budget:.2} node-hours: {} nodes, tile {} → {:.1} s",
            r.nodes, r.tile, r.predicted_seconds
        );
    }
    if let Some(r) = advisor.cheapest_within_deadline(o, v, deadline) {
        println!(
            "  cheapest within {deadline:.0} s: {} nodes, tile {} → {:.2} node-hours",
            r.nodes, r.tile, r.predicted_node_hours
        );
    }

    println!("\nrisk-averse shortest-time answers (upper confidence bound µ + κσ):");
    let ua = UncertaintyAdvisor::new(&rf, machine);
    for kappa in [0.0, 1.0, 3.0] {
        if let Some(r) = ua.answer_risk_averse(o, v, Goal::ShortestTime, kappa) {
            println!(
                "  κ={kappa}: {} nodes, tile {} → {:.1} s ± {:.1}",
                r.rec.nodes, r.rec.tile, r.rec.predicted_seconds, r.seconds_std
            );
        }
    }
    println!(
        "\nLarger κ favours configurations the model has actually seen data\n\
         near — the cautious answer for an expensive one-shot allocation."
    );
}
