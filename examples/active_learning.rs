//! Active learning when experiments are expensive (paper §3.4): compare
//! random sampling, uncertainty sampling and query-by-committee on a
//! machine's corpus and report how many experiments each needs to reach a
//! target accuracy.
//!
//! ```text
//! cargo run --release --example active_learning [aurora|frontier]
//! ```

use chemcost::active::{ActiveConfig, Strategy};
use chemcost::core::data::MachineData;
use chemcost::core::pipeline::active_learning_run;
use chemcost::sim::machine::{by_name, frontier};

fn main() {
    let machine = std::env::args().nth(1).and_then(|n| by_name(&n)).unwrap_or_else(frontier);
    println!("generating corpus for {} …", machine.name);
    let data = MachineData::generate_sized(&machine, 1200, 7);
    let cfg = ActiveConfig {
        n_initial: 50,
        query_size: 50,
        n_queries: 10,
        seed: 3,
        gb_shape: (120, 5, 0.1),
    };
    println!(
        "pool: {} configurations; starting from {} labels, querying {} per round\n",
        data.train_idx.len(),
        cfg.n_initial,
        cfg.query_size
    );
    for strategy in Strategy::all() {
        let run = active_learning_run(&data, strategy, None, &cfg);
        println!("strategy {strategy}:");
        for r in run.rounds.iter().step_by(3) {
            println!(
                "  {:>4} experiments → R² {:>6.3}  MAPE {:>6.3}  MAE {:>8.2}",
                r.n_labeled, r.pool.r2, r.pool.mape, r.pool.mae
            );
        }
        match run.samples_to_mape(0.2) {
            Some(n) => println!("  → MAPE ≤ 0.2 after {n} experiments\n"),
            None => println!("  → MAPE ≤ 0.2 not reached within the budget\n"),
        }
    }
}
