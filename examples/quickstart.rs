//! Quickstart: train a runtime predictor and ask it the paper's two
//! questions for a molecule you have not run yet.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chemcost::core::advisor::{Advisor, Goal};
use chemcost::core::data::MachineData;
use chemcost::core::evaluation::prediction_scores;
use chemcost::core::pipeline::train_fast_gb;
use chemcost::sim::machine::aurora;

fn main() {
    // 1. Collect experiment data. On a real system this is a corpus of
    //    measured CCSD iteration times; here the bundled simulator plays
    //    the supercomputer. 800 samples keep the example snappy — use
    //    MachineData::generate(&machine, seed) for the full Table 1 corpus.
    let machine = aurora();
    println!("generating a training corpus on simulated {} …", machine.name);
    let data = MachineData::generate_sized(&machine, 800, 42);

    // 2. Train the predictor (gradient boosting — the paper's best model).
    let model = train_fast_gb(&data);
    let scores = prediction_scores(&model, &data.test_samples());
    println!("held-out prediction quality: {scores}\n");

    // 3. Ask the two user questions for a problem size of interest:
    //    O = 120 occupied, V = 900 virtual orbitals.
    let advisor = Advisor::new(&model, machine);
    let (o, v) = (120, 900);
    for goal in [Goal::ShortestTime, Goal::Budget] {
        match advisor.answer(o, v, goal) {
            Some(rec) => println!(
                "{}: run (O={o}, V={v}) on {} nodes with tile size {} \
                 → predicted {:.1} s/iteration, {:.2} node-hours",
                goal.abbrev(),
                rec.nodes,
                rec.tile,
                rec.predicted_seconds,
                rec.predicted_node_hours,
            ),
            None => println!("{}: no feasible configuration (problem too large)", goal.abbrev()),
        }
    }
}
