//! Explore the CCSD-iteration simulator directly: sweep node counts and
//! tile sizes for one problem and watch the cost structure (balanced work,
//! load imbalance, runtime overheads) trade off — the structure the ML
//! models in the other examples learn from data.
//!
//! ```text
//! cargo run --release --example simulator_explore [O V]
//! ```

use chemcost::sim::ccsd::Problem;
use chemcost::sim::machine::aurora;
use chemcost::sim::simulate::{fits_in_memory, memory_bytes, simulate_iteration_clean, Config};
use chemcost::sim::trace::trace_iteration;

fn main() {
    let mut args = std::env::args().skip(1);
    let o: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(134);
    let v: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(951);
    let p = Problem::new(o, v);
    let machine = aurora();

    println!(
        "problem (O={o}, V={v}): leading term 2·O²V⁴ = {:.2e} FLOP/iteration, \
         tensors ≈ {:.0} GiB",
        p.leading_flops(),
        memory_bytes(&p) / (1u64 << 30) as f64
    );

    println!("\nnode sweep at tile = 70:");
    println!(
        "{:>6} {:>10} {:>10} {:>11} {:>10} {:>11}",
        "nodes", "seconds", "balanced", "imbalance", "overhead", "node-hours"
    );
    for nodes in [10, 25, 50, 100, 200, 350, 600, 900] {
        if !fits_in_memory(&p, nodes, &machine) {
            println!("{nodes:>6}   — does not fit in memory —");
            continue;
        }
        let r = simulate_iteration_clean(&p, &Config::new(nodes, 70), &machine);
        println!(
            "{nodes:>6} {:>10.2} {:>10.2} {:>11.2} {:>10.2} {:>11.3}",
            r.seconds,
            r.breakdown.balanced,
            r.breakdown.imbalance,
            r.breakdown.overhead,
            r.node_hours
        );
    }

    println!("\ntile sweep at nodes = 300:");
    println!("{:>6} {:>10} {:>12} {:>10}", "tile", "seconds", "tile tasks", "imbalance");
    for tile in [30, 40, 50, 70, 90, 110, 140, 180] {
        let r = simulate_iteration_clean(&p, &Config::new(300, tile), &machine);
        println!("{tile:>6} {:>10.2} {:>12} {:>10.2}", r.seconds, r.n_tasks, r.breakdown.imbalance);
    }

    // Per-task execution trace for a small configuration: where does the
    // time actually go on each GPU?
    let small = Problem::new(44, 260);
    let cfg = Config::new(5, 40);
    match trace_iteration(&small, &cfg, &machine, 0.05, 1) {
        Ok(trace) => {
            println!(
                "\nper-task trace of (O=44, V=260) on 5 nodes (tile 40): {} tasks, \
                 task-phase makespan {:.2} s, mean GPU utilization {:.0}%",
                trace.n_tasks(),
                trace.makespan,
                trace.utilization() * 100.0
            );
            let busiest = trace.executor_busy.iter().cloned().fold(0.0f64, f64::max);
            let laziest = trace.executor_busy.iter().cloned().fold(f64::INFINITY, f64::min);
            println!(
                "busiest GPU worked {busiest:.2} s, laziest {laziest:.2} s — that gap is the \
                 load imbalance the ML model has to learn"
            );
        }
        Err(e) => println!("\n(per-task trace skipped: {e})"),
    }

    println!(
        "\nNotes: wall time is non-monotone in both knobs — more nodes buy \
         compute but pay runtime overhead and load imbalance; bigger tiles \
         buy GEMM efficiency but starve the schedulers of tasks."
    );
}
