//! The full advisor workflow of the paper: train the deployed GB model on
//! a machine's corpus, reproduce its STQ/BQ evaluation tables, then answer
//! both questions for problem sizes that are *not* in the training data —
//! the actual user-facing scenario.
//!
//! ```text
//! cargo run --release --example advisor_stq_bq [aurora|frontier]
//! ```

use chemcost::core::advisor::{Advisor, Goal};
use chemcost::core::data::MachineData;
use chemcost::core::pipeline::{bq_table, render_opt_table, stq_table, train_paper_gb};
use chemcost::sim::machine::{aurora, by_name};

fn main() {
    let machine = std::env::args().nth(1).and_then(|n| by_name(&n)).unwrap_or_else(aurora);
    println!("building the full Table 1 corpus for {} …", machine.name);
    let data = MachineData::generate(&machine, 42);
    println!("training the deployed GB model (750 estimators, depth 10) …");
    let model = train_paper_gb(&data);

    // Reproduce the paper's evaluation tables.
    let stq = stq_table(&data, &model);
    println!("\n{}", render_opt_table(&stq, &machine.name).render());
    println!("STQ goal scores: {}\n", stq.scores);
    let bq = bq_table(&data, &model);
    println!("{}", render_opt_table(&bq, &machine.name).render());
    println!("BQ goal scores: {}\n", bq.scores);

    // Now the user scenario: molecules whose (O, V) the model never saw.
    let advisor = Advisor::new(&model, machine);
    println!("advice for unseen problem sizes:");
    for (o, v, label) in [
        (60, 400, "a mid-size water cluster"),
        (125, 880, "a porphyrin-like system"),
        (250, 1400, "a large complex"),
    ] {
        println!("  (O={o}, V={v}) — {label}:");
        for goal in [Goal::ShortestTime, Goal::Budget] {
            match advisor.answer(o, v, goal) {
                Some(r) => println!(
                    "    {:>3}: {} nodes, tile {} → {:.1} s, {:.2} node-hours",
                    goal.abbrev(),
                    r.nodes,
                    r.tile,
                    r.predicted_seconds,
                    r.predicted_node_hours
                ),
                None => println!("    {:>3}: does not fit on this machine", goal.abbrev()),
            }
        }
    }
}
